// Package transport runs the split-learning protocol over a real byte
// stream. It is the distributed counterpart of internal/split's
// in-process trainer: a UEPeer owns the camera images and the CNN half, a
// BSPeer owns the received powers, the labels and the LSTM half, and the
// two exchange cut-layer tensors through a framed, checksummed protocol
// over any net.Conn (TCP between processes, net.Pipe inside tests).
//
// Each peer updates only its own parameter partition — the defining
// property of split learning: raw images never leave the UE, labels and
// the BS model never leave the BS; only the pooled CNN outputs and their
// gradients cross the network.
package transport

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"

	"repro/internal/compress"
	"repro/internal/tensor"
)

// MsgType identifies a protocol message.
type MsgType uint8

// Protocol messages. The BS orchestrates: it requests forward passes for
// batches of anchor indices and returns cut-layer gradients for training
// steps (evaluation requests get no gradient). A multi-UE session opens
// with a hello/ack handshake before any training traffic.
const (
	MsgBatchRequest MsgType = iota + 1 // BS→UE: anchors for a training step
	MsgEvalRequest                     // BS→UE: anchors for evaluation (no backward)
	MsgActivations                     // UE→BS: pooled CNN outputs
	MsgCutGradient                     // BS→UE: gradient of the cut layer
	MsgShutdown                        // BS→UE: training finished
	MsgSessionHello                    // UE→BS: join request with session parameters
	MsgSessionAck                      // BS→UE: session accepted or rejected
	MsgCheckpoint                      // BS→UE: train state checkpointed at Step; UE saves its half
)

// ProtocolVersion is stamped into every frame header. Version 0 is the
// original 1:1 UE↔BS protocol without the session handshake; version 1
// added the hello/ack handshake; version 2 added the negotiated
// cut-layer payload codec (tensor sections carry a codec id, hellos a
// requested codec); version 3 added the session lifecycle — hellos and
// acks carry a resume token (epoch + last checkpointed step), and the
// BS instructs the UE to checkpoint with MsgCheckpoint.
//
// Readers accept any version up to their own and reject newer ones;
// version-0/1 tensor sections decode as the lossless Raw codec.
// Compatibility is now negotiated on both sides: a reader understands
// every older peer's frames, and a writer can stamp (and lay out) its
// frames at any older version via WriteMessageVersion, which the
// multi-UE server uses to talk to v1/v2 peers in their own dialect —
// an old UE against a new BS negotiates down cleanly instead of
// rejecting the BS's frames.
const ProtocolVersion = 3

// String names the message type for diagnostics.
func (t MsgType) String() string {
	switch t {
	case MsgBatchRequest:
		return "BatchRequest"
	case MsgEvalRequest:
		return "EvalRequest"
	case MsgActivations:
		return "Activations"
	case MsgCutGradient:
		return "CutGradient"
	case MsgShutdown:
		return "Shutdown"
	case MsgSessionHello:
		return "SessionHello"
	case MsgSessionAck:
		return "SessionAck"
	case MsgCheckpoint:
		return "Checkpoint"
	}
	return fmt.Sprintf("MsgType(%d)", uint8(t))
}

// Hello carries the handshake parameters of a multi-UE session. The UE
// announces the dataset/model identity it was launched with; the BS
// provisions a matching session (or rejects) and echoes its own view
// back. ConfigFP lets both ends detect a drifted configuration before any
// tensor crosses the wire.
type Hello struct {
	Version      uint8   // sender's ProtocolVersion
	SessionID    string  // UE-chosen session name, unique per BS
	Seed         int64   // shared experiment seed
	Frames       uint32  // synthetic dataset length
	Pool         uint16  // square pooling size w
	Modality     uint8   // split.Modality the session trains
	ConfigFP     uint64  // fingerprint of the derived split.Config
	TargetRMSEdB float64 // UE's stopping criterion (0: use the server's)
	Err          string  // ack only: non-empty means the session was rejected
	Codec        uint8   // compress.ID of the requested/granted payload codec

	// Resume token (protocol ≥ 3). Epoch is the BS-assigned incarnation
	// number of the session: each accepted connection for a session id
	// gets a strictly larger epoch, fencing any half-dead predecessor.
	// ResumeStep in a hello asks the BS to resume from the train-state
	// checkpoint taken at that step (0: fresh join); in an ack it is the
	// granted resume step. Flags carries the HelloFlag* bits.
	Epoch      uint32
	ResumeStep uint32
	Flags      uint8
}

// Hello flag bits (protocol ≥ 3).
const (
	// HelloFlagResumeRejected marks a rejection ack whose cause is the
	// resume token itself (missing checkpoint, stale fingerprint,
	// resume unsupported) rather than the join as such — a structured
	// signal that rejoining without the token can cure the rejection,
	// so clients need not parse the human-readable reason.
	HelloFlagResumeRejected uint8 = 1 << 0
)

// CodecServerDefault is a sentinel hello codec asking the BS to pick:
// the server rewrites it to its current policy's default codec before
// provisioning, and the ack carries the concrete grant. It deliberately
// lives outside the compress.ID space (Raw is 0, so 0 cannot mean
// "unset") and is never valid on the wire after the handshake. A
// sentinel hello must also leave ConfigFP zero — the UE cannot
// fingerprint a config whose codec it does not yet know.
const CodecServerDefault uint8 = 0xFF

// maxHelloString bounds the variable-length handshake fields.
const maxHelloString = 256

// Message is one protocol datagram.
type Message struct {
	Type    MsgType
	Step    uint32         // training step / request correlation id
	Anchors []int32        // batch/eval requests
	Tensor  *tensor.Tensor // activations / gradients
	Codec   compress.ID    // codec the tensor section was encoded with
	Hello   *Hello         // session handshake (hello/ack only)
}

// Protocol limits; a frame that exceeds them is rejected as corrupt or
// hostile rather than allocated.
const (
	maxFramePayload = 64 << 20 // 64 MiB
	maxAnchors      = 1 << 20
)

var (
	frameMagic = [2]byte{0xA5, 0x5C}

	// ErrBadFrame is returned for structurally invalid frames.
	ErrBadFrame = errors.New("transport: bad frame")
	// ErrChecksum is returned when a frame fails CRC validation.
	ErrChecksum = errors.New("transport: checksum mismatch")
)

// Frame layout:
//
//	magic(2) type(1) version(1) step(4) length(4) payload(length) crc32(4)
//
// crc32 (IEEE) covers everything from magic through payload. The version
// byte was reserved (always 0) before ProtocolVersion 1 introduced the
// session handshake; readers accept any version up to their own.

// WriteMessage encodes and writes one frame at the current
// ProtocolVersion.
func WriteMessage(w io.Writer, m *Message) error {
	return WriteMessageVersion(w, m, ProtocolVersion)
}

// WriteMessageVersion encodes and writes one frame stamped — and laid
// out — at the given protocol version, which must not exceed this
// endpoint's own. The multi-UE server uses it to answer v1/v2 peers in
// frames they can read: older hello layouts drop the trailing v2/v3
// fields, and pre-codec tensor sections fall back to the bare Depth64
// encoding (only valid for the Raw codec).
//
// The frame is assembled in one buffer and issued as a single Write, so
// a frame is never torn across writes on its way into the kernel; the
// serving hot path uses FrameWriter, which reuses the buffer across
// messages.
func WriteMessageVersion(w io.Writer, m *Message, version uint8) error {
	buf, err := AppendMessage(nil, m, version)
	if err != nil {
		return err
	}
	_, err = w.Write(buf)
	return err
}

// AppendMessage appends one complete frame (header, payload, CRC
// trailer) for m to buf, laid out at the given protocol version, and
// returns the extended slice — the zero-copy primitive behind
// WriteMessageVersion and FrameWriter. A caller that reuses buf across
// messages performs no per-message allocation once the buffer has grown
// to the session's steady-state frame size.
func AppendMessage(buf []byte, m *Message, version uint8) ([]byte, error) {
	if version > ProtocolVersion {
		return nil, fmt.Errorf("%w: cannot write protocol version %d (own is %d)",
			ErrBadFrame, version, ProtocolVersion)
	}
	if version < 3 && m.Type == MsgCheckpoint {
		return nil, fmt.Errorf("%w: %v needs protocol ≥ 3 (writing %d)", ErrBadFrame, m.Type, version)
	}
	start := len(buf)
	buf = append(buf, frameMagic[0], frameMagic[1], byte(m.Type), version)
	buf = binary.BigEndian.AppendUint32(buf, m.Step)
	buf = append(buf, 0, 0, 0, 0) // length, backfilled below
	buf, err := appendPayload(buf, m, version)
	if err != nil {
		return nil, err
	}
	payloadLen := len(buf) - start - 12
	if payloadLen > maxFramePayload {
		return nil, fmt.Errorf("%w: payload %d bytes exceeds limit", ErrBadFrame, payloadLen)
	}
	binary.BigEndian.PutUint32(buf[start+8:], uint32(payloadLen))
	return binary.BigEndian.AppendUint32(buf, crc32.ChecksumIEEE(buf[start:])), nil
}

// ReadMessage reads and validates one frame. The returned message and
// its tensor are freshly allocated; the serving hot path uses
// FrameReader, which reuses a per-connection buffer and decode scratch
// instead.
func ReadMessage(r io.Reader) (*Message, error) {
	fr := FrameReader{r: r}
	m, err := fr.ReadMessage()
	if err != nil {
		return nil, err
	}
	out := *m // detach from the local reader's scratch
	return &out, nil
}

// FrameHeader is a validated frame header, the handoff between reading
// a frame's bytes and decoding its payload (the pipelined server runs
// the two on different stage workers).
type FrameHeader struct {
	Type    MsgType
	Version uint8
	Step    uint32
}

// Payload layout: uint32 anchor count, anchors as int32, then an
// optional tensor section, then an optional hello section (presence
// flag byte + hello encoding).
//
// The tensor section is versioned. Version ≥ 2 frames carry the
// negotiated codec explicitly:
//
//	flag(1) codec(1) length(4) codec-encoded payload
//
// Version-0/1 frames carry `flag(1) tensor@Depth64` — exactly the Raw
// codec's encoding without the id/length prefix — and decode with
// Codec == compress.CodecRaw. Version-0 frames simply end after the
// tensor section; their absence of a hello flag decodes as Hello == nil.

func appendPayload(buf []byte, m *Message, version uint8) ([]byte, error) {
	if len(m.Anchors) > maxAnchors {
		return nil, fmt.Errorf("%w: %d anchors exceeds limit", ErrBadFrame, len(m.Anchors))
	}
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(m.Anchors)))
	for _, a := range m.Anchors {
		buf = binary.BigEndian.AppendUint32(buf, uint32(a))
	}
	switch {
	case m.Tensor == nil:
		buf = append(buf, 0)
	case version < 2:
		// Pre-codec dialect: a bare Depth64 tensor section, which the
		// receiver decodes as Raw — so only Raw can be spoken down.
		if m.Codec != compress.CodecRaw {
			return nil, fmt.Errorf("%w: codec %v needs protocol ≥ 2 (writing %d)",
				ErrBadFrame, m.Codec, version)
		}
		var err error
		buf, err = tensor.Append(append(buf, 1), m.Tensor, tensor.Depth64)
		if err != nil {
			return nil, err
		}
	default:
		codec := compress.ForID(m.Codec)
		if codec == nil {
			return nil, fmt.Errorf("%w: compress: unknown codec id %d", ErrBadFrame, uint8(m.Codec))
		}
		buf = append(buf, 1, byte(m.Codec))
		lenAt := len(buf)
		buf = append(buf, 0, 0, 0, 0) // section length, backfilled
		var err error
		buf, err = codec.EncodeInto(buf, m.Tensor)
		if err != nil {
			return nil, err
		}
		binary.BigEndian.PutUint32(buf[lenAt:], uint32(len(buf)-lenAt-4))
	}
	if m.Hello == nil {
		return buf, nil
	}
	return appendHello(append(buf, 1), m.Hello, version)
}

func appendHello(buf []byte, h *Hello, version uint8) ([]byte, error) {
	if len(h.SessionID) > maxHelloString || len(h.Err) > maxHelloString {
		return nil, fmt.Errorf("%w: hello string exceeds %d bytes", ErrBadFrame, maxHelloString)
	}
	buf = append(buf, h.Version, h.Modality)
	buf = binary.BigEndian.AppendUint16(buf, h.Pool)
	buf = binary.BigEndian.AppendUint32(buf, h.Frames)
	buf = binary.BigEndian.AppendUint64(buf, uint64(h.Seed))
	buf = binary.BigEndian.AppendUint64(buf, h.ConfigFP)
	buf = binary.BigEndian.AppendUint64(buf, math.Float64bits(h.TargetRMSEdB))
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(h.SessionID)))
	buf = append(buf, h.SessionID...)
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(h.Err)))
	buf = append(buf, h.Err...)
	if version < 2 {
		// Version-1 hellos simply stop after the strings (and decode
		// with Codec == Raw); requesting anything else cannot be said
		// in this dialect.
		if h.Codec != 0 || h.Epoch != 0 || h.ResumeStep != 0 || h.Flags != 0 {
			return nil, fmt.Errorf("%w: hello codec/resume fields need protocol ≥ 2 (writing %d)",
				ErrBadFrame, version)
		}
		return buf, nil
	}
	// The codec byte trails the version-1 layout so version-1 hellos
	// keep decoding as Raw.
	buf = append(buf, h.Codec)
	if version < 3 {
		if h.Epoch != 0 || h.ResumeStep != 0 || h.Flags != 0 {
			return nil, fmt.Errorf("%w: hello resume token needs protocol ≥ 3 (writing %d)",
				ErrBadFrame, version)
		}
		return buf, nil
	}
	// The version-3 resume token and flags trail the version-2 layout.
	buf = binary.BigEndian.AppendUint32(buf, h.Epoch)
	buf = binary.BigEndian.AppendUint32(buf, h.ResumeStep)
	return append(buf, h.Flags), nil
}

func decodeHello(payload []byte) (*Hello, error) {
	const fixed = 1 + 1 + 2 + 4 + 8 + 8 + 8 // version, modality, pool, frames, seed, fingerprint, target
	if len(payload) < fixed+2 {
		return nil, fmt.Errorf("%w: hello section too short", ErrBadFrame)
	}
	h := &Hello{
		Version:      payload[0],
		Modality:     payload[1],
		Pool:         binary.BigEndian.Uint16(payload[2:]),
		Frames:       binary.BigEndian.Uint32(payload[4:]),
		Seed:         int64(binary.BigEndian.Uint64(payload[8:])),
		ConfigFP:     binary.BigEndian.Uint64(payload[16:]),
		TargetRMSEdB: math.Float64frombits(binary.BigEndian.Uint64(payload[24:])),
	}
	payload = payload[fixed:]
	for i, dst := range []*string{&h.SessionID, &h.Err} {
		if len(payload) < 2 {
			return nil, fmt.Errorf("%w: hello string %d truncated", ErrBadFrame, i)
		}
		n := int(binary.BigEndian.Uint16(payload))
		payload = payload[2:]
		if n > maxHelloString || len(payload) < n {
			return nil, fmt.Errorf("%w: hello string %d length %d inconsistent", ErrBadFrame, i, n)
		}
		*dst = string(payload[:n])
		payload = payload[n:]
	}
	switch len(payload) {
	case 0: // version-1 hello: no codec byte, Raw implied
	case 1: // version-2 hello: codec byte only
		h.Codec = payload[0]
	case 10: // version-3 hello: codec byte + epoch + resume step + flags
		h.Codec = payload[0]
		h.Epoch = binary.BigEndian.Uint32(payload[1:])
		h.ResumeStep = binary.BigEndian.Uint32(payload[5:])
		h.Flags = payload[9]
	default:
		return nil, fmt.Errorf("%w: trailing bytes after hello", ErrBadFrame)
	}
	return h, nil
}

// decodeScratch is the reusable decode state of one connection: the
// anchor slice and tensor a FrameReader refills message after message,
// so steady-state serving decodes with zero per-message allocations.
type decodeScratch struct {
	anchors []int32
	tensor  *tensor.Tensor
}

func decodePayload(m *Message, payload []byte, version uint8, sc *decodeScratch) error {
	if len(payload) < 5 {
		return fmt.Errorf("%w: payload too short", ErrBadFrame)
	}
	n := binary.BigEndian.Uint32(payload)
	if n > maxAnchors || len(payload) < int(4+4*n+1) {
		return fmt.Errorf("%w: anchor count %d inconsistent with payload", ErrBadFrame, n)
	}
	payload = payload[4:]
	if n > 0 {
		if sc != nil && cap(sc.anchors) >= int(n) {
			m.Anchors = sc.anchors[:n]
		} else {
			m.Anchors = make([]int32, n)
			if sc != nil {
				sc.anchors = m.Anchors
			}
		}
		for i := range m.Anchors {
			m.Anchors[i] = int32(binary.BigEndian.Uint32(payload[4*i:]))
		}
	}
	payload = payload[4*n:]
	hasTensor := payload[0]
	payload = payload[1:]
	switch hasTensor {
	case 0:
	case 1:
		rest, err := decodeTensorSection(m, payload, version, sc)
		if err != nil {
			return err
		}
		payload = rest
	default:
		return fmt.Errorf("%w: bad tensor flag %d", ErrBadFrame, hasTensor)
	}
	if len(payload) == 0 {
		return nil // version-0 payload: no hello section
	}
	if payload[0] != 1 {
		return fmt.Errorf("%w: bad hello flag %d", ErrBadFrame, payload[0])
	}
	h, err := decodeHello(payload[1:])
	if err != nil {
		return err
	}
	m.Hello = h
	return nil
}

// decodeTensorSection parses the tensor section after its presence flag
// and returns the remaining payload. Version ≥ 2 sections are
// length-prefixed and codec-tagged; earlier versions are a bare Depth64
// tensor encoding, which the Raw codec inverts. With a scratch, the
// tensor decodes into (and the scratch then tracks) the reusable
// per-connection tensor.
func decodeTensorSection(m *Message, payload []byte, version uint8, sc *decodeScratch) ([]byte, error) {
	var dst *tensor.Tensor
	if sc != nil {
		dst = sc.tensor
	}
	if version < 2 {
		t, rest, err := tensor.DecodeBytes(dst, payload)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadFrame, err)
		}
		m.Tensor, m.Codec = t, compress.CodecRaw
		if sc != nil {
			sc.tensor = t
		}
		return rest, nil
	}
	if len(payload) < 5 {
		return nil, fmt.Errorf("%w: truncated tensor section", ErrBadFrame)
	}
	id := compress.ID(payload[0])
	length := binary.BigEndian.Uint32(payload[1:])
	payload = payload[5:]
	codec := compress.ForID(id)
	if codec == nil {
		return nil, fmt.Errorf("%w: compress: unknown codec id %d", ErrBadFrame, uint8(id))
	}
	if int(length) > len(payload) {
		return nil, fmt.Errorf("%w: tensor section length %d exceeds payload", ErrBadFrame, length)
	}
	t, err := codec.DecodeInto(dst, payload[:length])
	if err != nil {
		// Fold codec-level corruption into the protocol's error
		// contract: every reader error is ErrBadFrame or ErrChecksum.
		return nil, fmt.Errorf("%w: %v", ErrBadFrame, err)
	}
	m.Tensor, m.Codec = t, id
	if sc != nil {
		sc.tensor = t
	}
	return payload[length:], nil
}
