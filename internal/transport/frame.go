package transport

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"sync"
)

// Zero-copy frame path. FrameReader and FrameWriter bind a connection
// to reusable, grow-only frame buffers drawn from a shared pool, plus
// (on the read side) a decode scratch holding the anchor slice and
// tensor that are refilled message after message. Once a session's
// buffers have grown to its steady-state frame size, reading and
// writing a message performs zero allocations in either direction —
// the property the bench-regression CI step pins.
//
// Ownership rules (DESIGN.md §8): everything a FrameReader returns —
// the Message, its Anchors, its Tensor, raw payload bytes — is owned by
// the reader and valid only until the next Read*/Release call; callers
// that need a value past that point copy it. A FrameWriter's buffer is
// private to it; Release returns the buffers to the shared pool for the
// next session (the per-connection buffers of a finished session are
// how session churn stays allocation-flat).

// frameBufPool recycles frame buffers across sessions.
var frameBufPool = sync.Pool{
	New: func() any { b := make([]byte, 0, 4096); return &b },
}

func getFrameBuf() []byte  { return *frameBufPool.Get().(*[]byte) }
func putFrameBuf(b []byte) { b = b[:0]; frameBufPool.Put(&b) }

// FrameReader reads protocol frames from a stream through a reusable
// per-connection buffer. It is not safe for concurrent use; a session
// has exactly one reader.
type FrameReader struct {
	r   io.Reader
	buf []byte
	sc  decodeScratch
	msg Message
}

// NewFrameReader wraps r with a pooled read buffer.
func NewFrameReader(r io.Reader) *FrameReader {
	return &FrameReader{r: r, buf: getFrameBuf()}
}

// Release returns the reader's buffer to the shared pool. The reader
// must not be used afterwards.
func (fr *FrameReader) Release() {
	if fr.buf != nil {
		putFrameBuf(fr.buf)
		fr.buf = nil
	}
}

// grow resizes the read buffer to n bytes, preserving current contents
// (the frame header is read before the body length is known) and
// growing capacity only.
func (fr *FrameReader) grow(n int) []byte {
	if cap(fr.buf) < n {
		nb := make([]byte, n)
		copy(nb, fr.buf)
		fr.buf = nb
	}
	fr.buf = fr.buf[:n]
	return fr.buf
}

// ReadFrame reads and CRC-validates one frame, returning its header and
// payload bytes. The payload aliases the reader's buffer: it is valid
// only until the next ReadFrame. Splitting the byte transfer from
// Decode is what lets the pipelined server run network reads and
// payload decoding on different stage workers.
func (fr *FrameReader) ReadFrame() (FrameHeader, []byte, error) {
	var hdr FrameHeader
	header := fr.grow(12)
	if _, err := io.ReadFull(fr.r, header); err != nil {
		return hdr, nil, err
	}
	if header[0] != frameMagic[0] || header[1] != frameMagic[1] {
		return hdr, nil, fmt.Errorf("%w: bad magic %x", ErrBadFrame, header[:2])
	}
	if header[3] > ProtocolVersion {
		return hdr, nil, fmt.Errorf("%w: protocol version %d newer than %d",
			ErrBadFrame, header[3], ProtocolVersion)
	}
	hdr.Type = MsgType(header[2])
	hdr.Version = header[3]
	hdr.Step = binary.BigEndian.Uint32(header[4:])
	length := binary.BigEndian.Uint32(header[8:])
	if length > maxFramePayload {
		return hdr, nil, fmt.Errorf("%w: length %d exceeds limit", ErrBadFrame, length)
	}
	// One read for payload + trailer; header stays in place at the front
	// of the buffer so the CRC runs over one contiguous span.
	buf := fr.grow(12 + int(length) + 4)
	if _, err := io.ReadFull(fr.r, buf[12:]); err != nil {
		return hdr, nil, err
	}
	body := buf[:12+length]
	if crc32.ChecksumIEEE(body) != binary.BigEndian.Uint32(buf[12+length:]) {
		return hdr, nil, ErrChecksum
	}
	return hdr, body[12:], nil
}

// Decode parses a frame payload read by ReadFrame into the reader's
// reusable Message. The message, its anchors and its tensor are owned
// by the reader and valid only until the next ReadFrame/Decode.
func (fr *FrameReader) Decode(hdr FrameHeader, payload []byte) (*Message, error) {
	fr.msg = Message{Type: hdr.Type, Step: hdr.Step}
	if err := decodePayload(&fr.msg, payload, hdr.Version, &fr.sc); err != nil {
		return nil, err
	}
	return &fr.msg, nil
}

// ReadMessage reads, validates and decodes one frame. Ownership is as
// for Decode: the result is invalidated by the next read.
func (fr *FrameReader) ReadMessage() (*Message, error) {
	hdr, payload, err := fr.ReadFrame()
	if err != nil {
		return nil, err
	}
	return fr.Decode(hdr, payload)
}

// ReadRawMessage reads one frame from r and returns the decoded message
// together with a private copy of the frame's raw wire bytes (header,
// payload and CRC trailer), suitable for byte-exact relay onto another
// stream. It allocates per call — built for handshake peeking (the
// coordinator routing on a hello before splicing the connection), not
// for the serving hot path.
func ReadRawMessage(r io.Reader) (*Message, []byte, error) {
	fr := NewFrameReader(r)
	defer fr.Release()
	hdr, payload, err := fr.ReadFrame()
	if err != nil {
		return nil, nil, err
	}
	raw := append([]byte(nil), fr.buf...)
	m := &Message{Type: hdr.Type, Step: hdr.Step}
	var sc decodeScratch
	if err := decodePayload(m, payload, hdr.Version, &sc); err != nil {
		return nil, nil, err
	}
	return m, raw, nil
}

// FrameWriter writes protocol frames to a stream through a reusable
// per-connection buffer, one Write call per frame. It is not safe for
// concurrent use; a session has exactly one writer.
type FrameWriter struct {
	w   io.Writer
	buf []byte
}

// NewFrameWriter wraps w with a pooled write buffer.
func NewFrameWriter(w io.Writer) *FrameWriter {
	return &FrameWriter{w: w, buf: getFrameBuf()}
}

// Release returns the writer's buffer to the shared pool. The writer
// must not be used afterwards.
func (fw *FrameWriter) Release() {
	if fw.buf != nil {
		putFrameBuf(fw.buf)
		fw.buf = nil
	}
}

// Encode lays out one frame for m at the given version into the
// writer's buffer, replacing any previously encoded frame. Flush sends
// it. The split lets the pipelined server encode on a stage worker
// while the owning session goroutine performs the write.
func (fw *FrameWriter) Encode(m *Message, version uint8) error {
	buf, err := AppendMessage(fw.buf[:0], m, version)
	if err != nil {
		return err
	}
	fw.buf = buf
	return nil
}

// Flush writes the encoded frame.
func (fw *FrameWriter) Flush() error {
	_, err := fw.w.Write(fw.buf)
	fw.buf = fw.buf[:0]
	return err
}

// WriteMessage encodes and writes one frame at the given version.
func (fw *FrameWriter) WriteMessage(m *Message, version uint8) error {
	if err := fw.Encode(m, version); err != nil {
		return err
	}
	return fw.Flush()
}
