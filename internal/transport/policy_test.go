package transport

import (
	"errors"
	"net"
	"strings"
	"testing"
	"time"

	"repro/internal/compress"
)

// Live-reconfiguration coverage: SetPolicy swaps must bind at each
// field's documented point (session join, round boundary, step
// boundary) and must never install an invalid policy.

func TestSetPolicyValidates(t *testing.T) {
	srv, err := NewBSServer(ServerConfig{MaxUE: 2, Provision: tinySessionEnv})
	if err != nil {
		t.Fatal(err)
	}
	base := srv.CurrentPolicy()
	for name, mut := range map[string]func(*Policy){
		"MaxUE zero":            func(p *Policy) { p.MaxUE = 0 },
		"negative IdleTimeout":  func(p *Policy) { p.IdleTimeout = -time.Second },
		"negative BatchWindow":  func(p *Policy) { p.BatchWindow = -time.Millisecond },
		"BatchMax zero":         func(p *Policy) { p.BatchMax = 0 },
		"CheckpointEvery zero":  func(p *Policy) { p.CheckpointEvery = 0 },
		"unknown default codec": func(p *Policy) { p.DefaultCodec = 99 },
	} {
		p := base
		mut(&p)
		if err := srv.SetPolicy(p); err == nil {
			t.Errorf("%s: invalid policy installed", name)
		}
	}
	if srv.CurrentPolicy() != base {
		t.Fatal("rejected policies mutated the current policy")
	}
	// The pipelined path is boot-only: a serial-booted server must
	// refuse a policy that tries to switch coalescing on.
	p := base
	p.BatchWindow = time.Millisecond
	if err := srv.SetPolicy(p); err == nil {
		t.Fatal("serial-booted server accepted BatchWindow > 0")
	}

	piped, err := NewBSServer(ServerConfig{
		MaxUE: 2, BatchWindow: 5 * time.Millisecond, Provision: tinySessionEnv,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer piped.Close()
	for _, w := range []time.Duration{0, time.Millisecond, 10 * time.Millisecond} {
		p := piped.CurrentPolicy()
		p.BatchWindow = w
		if err := piped.SetPolicy(p); err != nil {
			t.Fatalf("pipelined server refused window %v: %v", w, err)
		}
	}
}

// TestServerDefaultCodecPolicy: a hello requesting CodecServerDefault
// is granted the policy's current default — and a policy swap rebinds
// the grant for later joins without touching sessions that named a
// codec explicitly.
func TestServerDefaultCodecPolicy(t *testing.T) {
	srv, err := NewBSServer(ServerConfig{
		MaxUE: 1, Steps: 4, EvalEvery: 2, ValAnchors: 8, Provision: tinySessionEnv,
	})
	if err != nil {
		t.Fatal(err)
	}
	run := func(i int, codec uint8, fp bool) compress.ID {
		t.Helper()
		h := tinyHello(i)
		h.Codec = codec
		cfg, d, _, err := tinySessionEnv(h)
		if err != nil {
			t.Fatal(err)
		}
		if fp {
			cfg.Codec = compress.ID(codec)
			h.ConfigFP = cfg.Fingerprint()
		}
		ueConn, bsConn := net.Pipe()
		done := make(chan error, 1)
		go func() { done <- srv.Handle(bsConn) }()
		if err := ServeUE(ueConn, h, cfg, d); err != nil {
			t.Fatalf("session %d: UE: %v", i, err)
		}
		if err := <-done; err != nil {
			t.Fatalf("session %d: BS: %v", i, err)
		}
		snap, ok := srv.SessionByID(h.SessionID)
		if !ok || snap.State != SessionDetached {
			t.Fatalf("session %d: no detached snapshot (%+v)", i, snap)
		}
		return compress.ID(snap.Hello.Codec)
	}

	if got := run(0, CodecServerDefault, false); got != compress.CodecRaw {
		t.Fatalf("boot default grant = %v, want raw", got)
	}
	p := srv.CurrentPolicy()
	p.DefaultCodec = compress.CodecFloat16
	if err := srv.SetPolicy(p); err != nil {
		t.Fatal(err)
	}
	if got := run(1, CodecServerDefault, false); got != compress.CodecFloat16 {
		t.Fatalf("post-swap default grant = %v, want float16", got)
	}
	if got := run(2, uint8(compress.CodecQuantInt8), true); got != compress.CodecQuantInt8 {
		t.Fatalf("explicit codec overridden to %v", got)
	}
}

// TestPolicyMaxUEBindsAtJoin: lowering MaxUE refuses new admissions
// against the already-admitted population; raising it re-opens them.
// Nothing live is evicted by the swap itself.
func TestPolicyMaxUEBindsAtJoin(t *testing.T) {
	srv, err := NewBSServer(ServerConfig{
		MaxUE: 8, Steps: 4, EvalEvery: 2, ValAnchors: 8, Provision: tinySessionEnv,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Occupy one slot without a connection (the starvation test's trick).
	if _, _, err := srv.store.admit(Hello{SessionID: "occupant"}, ProtocolVersion, nopCloser{}, 8); err != nil {
		t.Fatal(err)
	}
	p := srv.CurrentPolicy()
	p.MaxUE = 1
	if err := srv.SetPolicy(p); err != nil {
		t.Fatal(err)
	}
	if n := srv.ActiveSessions(); n != 1 {
		t.Fatalf("policy swap disturbed live sessions: %d live", n)
	}

	join := func(i int) error {
		h := tinyHello(i)
		cfg, d, _, err := tinySessionEnv(h)
		if err != nil {
			t.Fatal(err)
		}
		h.ConfigFP = cfg.Fingerprint()
		ueConn, bsConn := net.Pipe()
		done := make(chan error, 1)
		go func() { done <- srv.Handle(bsConn) }()
		ueErr := ServeUE(ueConn, h, cfg, d)
		<-done
		return ueErr
	}
	if err := join(0); !errors.Is(err, ErrSessionRejected) || !strings.Contains(err.Error(), "full") {
		t.Fatalf("join under lowered cap: %v, want server-full rejection", err)
	}
	p.MaxUE = 8
	if err := srv.SetPolicy(p); err != nil {
		t.Fatal(err)
	}
	if err := join(1); err != nil {
		t.Fatalf("join after cap restored: %v", err)
	}
}

// TestCheckpointIntervalRebinds: the checkpoint cadence is resolved per
// step boundary, so a swap takes effect for steps already in progress.
func TestCheckpointIntervalRebinds(t *testing.T) {
	srv, err := NewBSServer(ServerConfig{
		MaxUE: 1, CheckpointDir: t.TempDir(), CheckpointEvery: 50, Provision: tinySessionEnv,
	})
	if err != nil {
		t.Fatal(err)
	}
	sess := &session{ver: 3}
	if srv.checkpointDue(sess, 10, false) {
		t.Fatal("step 10 due under interval 50")
	}
	p := srv.CurrentPolicy()
	p.CheckpointEvery = 10
	if err := srv.SetPolicy(p); err != nil {
		t.Fatal(err)
	}
	if !srv.checkpointDue(sess, 10, false) {
		t.Fatal("step 10 not due after rebinding interval to 10")
	}
	if srv.checkpointDue(sess, 15, false) {
		t.Fatal("step 15 due under interval 10")
	}
}

// TestEvictLiveSession: an administrative eviction severs the session
// mid-training, retires it as failed with ErrAdminEvicted as the cause
// (not the incidental I/O error), and frees its MaxUE slot.
func TestEvictLiveSession(t *testing.T) {
	endc := make(chan error, 4)
	srv, err := NewBSServer(ServerConfig{
		MaxUE: 1, Steps: 1_000_000, EvalEvery: 1_000_000, ValAnchors: 8,
		Provision:    tinySessionEnv,
		OnSessionEnd: func(_ SessionSnapshot, cause error) { endc <- cause },
	})
	if err != nil {
		t.Fatal(err)
	}
	h := tinyHello(0)
	cfg, d, _, err := tinySessionEnv(h)
	if err != nil {
		t.Fatal(err)
	}
	h.ConfigFP = cfg.Fingerprint()
	ueConn, bsConn := net.Pipe()
	bsErr := make(chan error, 1)
	ueErr := make(chan error, 1)
	go func() { bsErr <- srv.Handle(bsConn) }()
	go func() { ueErr <- ServeUE(ueConn, h, cfg, d) }()

	deadline := time.Now().Add(10 * time.Second)
	for srv.ActiveSessions() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("session never joined")
		}
		time.Sleep(time.Millisecond)
	}
	if err := srv.Evict("no-such-session"); err == nil {
		t.Fatal("evicting an unknown id succeeded")
	}
	if err := srv.Evict(h.SessionID); err != nil {
		t.Fatal(err)
	}
	select {
	case cause := <-endc:
		if !errors.Is(cause, ErrAdminEvicted) {
			t.Fatalf("OnSessionEnd cause = %v, want ErrAdminEvicted", cause)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("OnSessionEnd never fired after eviction")
	}
	if err := <-bsErr; err == nil {
		t.Fatal("evicted session's handler returned nil")
	}
	<-ueErr // severed; exact error does not matter
	snap, ok := srv.SessionByID(h.SessionID)
	if !ok || snap.State != SessionFailed || !errors.Is(snap.Cause(), ErrAdminEvicted) {
		t.Fatalf("post-eviction snapshot: ok %v state %v cause %v", ok, snap.State, snap.Cause())
	}
	if st := srv.Stats(); st.EndedAdmin != 1 || st.LiveSessions != 0 {
		t.Fatalf("stats after eviction: %+v", st)
	}
}
