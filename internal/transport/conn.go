package transport

import (
	"errors"
	"fmt"
	"io"
	"net"
	"sync/atomic"
	"time"
)

// ErrIdleTimeout marks a session connection that stalled past the
// configured idle timeout: the peer stopped sending (or draining) bytes
// mid-protocol, so the server fails the session and frees its slot
// instead of letting one wedged UE hold a MaxUE slot forever.
var ErrIdleTimeout = errors.New("transport: session idle timeout")

// deadliner is the deadline subset of net.Conn that idleConn arms.
type deadliner interface {
	SetReadDeadline(t time.Time) error
	SetWriteDeadline(t time.Time) error
}

// idleConn enforces an idle timeout on a connection-like stream by
// arming a fresh read (write) deadline immediately before every Read
// (Write). The deadline therefore only binds while an operation is
// actually blocked on the peer — a session parked in the scheduler with
// no I/O in flight never times out. Timeouts surface as ErrIdleTimeout.
type idleConn struct {
	inner   io.ReadWriteCloser
	dl      deadliner
	timeout time.Duration
}

// newIdleConn wraps inner with the idle timeout. Streams that cannot
// carry deadlines (or a non-positive timeout) pass through unchanged.
func newIdleConn(inner io.ReadWriteCloser, timeout time.Duration) io.ReadWriteCloser {
	dl, ok := inner.(deadliner)
	if !ok || timeout <= 0 {
		return inner
	}
	return &idleConn{inner: inner, dl: dl, timeout: timeout}
}

func (c *idleConn) Read(p []byte) (int, error) {
	_ = c.dl.SetReadDeadline(time.Now().Add(c.timeout))
	n, err := c.inner.Read(p)
	return n, c.wrapTimeout(err)
}

func (c *idleConn) Write(p []byte) (int, error) {
	_ = c.dl.SetWriteDeadline(time.Now().Add(c.timeout))
	n, err := c.inner.Write(p)
	return n, c.wrapTimeout(err)
}

func (c *idleConn) Close() error { return c.inner.Close() }

func (c *idleConn) wrapTimeout(err error) error {
	var ne net.Error
	if errors.As(err, &ne) && ne.Timeout() {
		return fmt.Errorf("%w after %v: %v", ErrIdleTimeout, c.timeout, err)
	}
	return err
}

// CountingConn wraps a connection-like stream and tallies the bytes and
// ops crossing it in each direction — the measurement hook for
// comparing the real protocol's overhead against the paper's idealised
// payload formula. It sits below the codec layer, so with a lossy
// session codec it reports the true compressed wire bytes (framing
// included), not the logical tensor sizes. The counters are lock-free
// atomics: they are bumped on every Read/Write of the serving hot path
// and polled by concurrent snapshot reporting, so a mutex here would be
// taken per message across every live session.
type CountingConn struct {
	inner io.ReadWriter

	bytesIn   atomic.Int64
	bytesOut  atomic.Int64
	readsOps  atomic.Int64
	writesOps atomic.Int64
}

// NewCountingConn wraps inner.
func NewCountingConn(inner io.ReadWriter) *CountingConn {
	return &CountingConn{inner: inner}
}

// Read implements io.Reader.
func (c *CountingConn) Read(p []byte) (int, error) {
	n, err := c.inner.Read(p)
	c.bytesIn.Add(int64(n))
	c.readsOps.Add(1)
	return n, err
}

// Write implements io.Writer.
func (c *CountingConn) Write(p []byte) (int, error) {
	n, err := c.inner.Write(p)
	c.bytesOut.Add(int64(n))
	c.writesOps.Add(1)
	return n, err
}

// ConnStats is a snapshot of a CountingConn's counters.
type ConnStats struct {
	BytesIn, BytesOut int64
	ReadOps, WriteOps int64
}

// Stats returns the current counters.
func (c *CountingConn) Stats() ConnStats {
	return ConnStats{
		BytesIn: c.bytesIn.Load(), BytesOut: c.bytesOut.Load(),
		ReadOps: c.readsOps.Load(), WriteOps: c.writesOps.Load(),
	}
}
