package transport

import (
	"io"
	"sync"
)

// CountingConn wraps a connection-like stream and tallies the bytes and
// frames crossing it in each direction — the measurement hook for
// comparing the real protocol's overhead against the paper's idealised
// payload formula. It sits below the codec layer, so with a lossy
// session codec it reports the true compressed wire bytes (framing
// included), not the logical tensor sizes.
type CountingConn struct {
	inner io.ReadWriter

	mu        sync.Mutex
	bytesIn   int64
	bytesOut  int64
	readsOps  int64
	writesOps int64
}

// NewCountingConn wraps inner.
func NewCountingConn(inner io.ReadWriter) *CountingConn {
	return &CountingConn{inner: inner}
}

// Read implements io.Reader.
func (c *CountingConn) Read(p []byte) (int, error) {
	n, err := c.inner.Read(p)
	c.mu.Lock()
	c.bytesIn += int64(n)
	c.readsOps++
	c.mu.Unlock()
	return n, err
}

// Write implements io.Writer.
func (c *CountingConn) Write(p []byte) (int, error) {
	n, err := c.inner.Write(p)
	c.mu.Lock()
	c.bytesOut += int64(n)
	c.writesOps++
	c.mu.Unlock()
	return n, err
}

// ConnStats is a snapshot of a CountingConn's counters.
type ConnStats struct {
	BytesIn, BytesOut int64
	ReadOps, WriteOps int64
}

// Stats returns the current counters.
func (c *CountingConn) Stats() ConnStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return ConnStats{
		BytesIn: c.bytesIn, BytesOut: c.bytesOut,
		ReadOps: c.readsOps, WriteOps: c.writesOps,
	}
}
