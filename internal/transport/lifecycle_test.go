package transport

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/dataset"
	"repro/internal/split"
)

// ---- shared harness ------------------------------------------------------------

// cachedProvision memoises tinySessionEnv per hello identity so churn
// and resume tests do not regenerate the dataset on every (re)join.
// Sessions only ever read the shared dataset, so sharing is safe.
func cachedProvision() Provision {
	type key struct {
		seed   int64
		frames uint32
		pool   uint16
		mod    uint8
	}
	type env struct {
		cfg split.Config
		d   *dataset.Dataset
		sp  *dataset.Split
	}
	var mu sync.Mutex
	cache := map[key]env{}
	return func(h Hello) (split.Config, *dataset.Dataset, *dataset.Split, error) {
		k := key{h.Seed, h.Frames, h.Pool, h.Modality}
		mu.Lock()
		defer mu.Unlock()
		if e, ok := cache[k]; ok {
			return e.cfg, e.d, e.sp, nil
		}
		cfg, d, sp, err := tinySessionEnv(h)
		if err != nil {
			return cfg, d, sp, err
		}
		cache[k] = env{cfg, d, sp}
		return cfg, d, sp, nil
	}
}

// pipeDialer hands a UESession one net.Pipe per dial, spawning
// srv.Handle on the BS side. Dial i is wrapped by faults[i] when set —
// the reconnect fault-injection hook.
type pipeDialer struct {
	srv    *BSServer
	faults map[int]func(io.ReadWriteCloser) io.ReadWriteCloser

	mu    sync.Mutex
	dials int
	wg    sync.WaitGroup
	errs  []error
}

func (p *pipeDialer) dial() (io.ReadWriteCloser, error) {
	ueConn, bsConn := net.Pipe()
	p.mu.Lock()
	i := p.dials
	p.dials++
	p.mu.Unlock()
	p.wg.Add(1)
	go func() {
		defer p.wg.Done()
		if err := p.srv.Handle(bsConn); err != nil {
			p.mu.Lock()
			p.errs = append(p.errs, err)
			p.mu.Unlock()
		}
	}()
	if f := p.faults[i]; f != nil {
		return f(ueConn), nil
	}
	return ueConn, nil
}

func (p *pipeDialer) wait() { p.wg.Wait() }

// ---- bounded session store -----------------------------------------------------

// TestSessionStoreBoundedOverChurn is the regression test for the
// session-map leak: 150 join/finish cycles must leave the live map
// empty and the retention ring at its cap.
func TestSessionStoreBoundedOverChurn(t *testing.T) {
	const retain, cycles = 8, 150
	st := newSessionStore(retain)
	for i := 0; i < cycles; i++ {
		h := tinyHello(i % 5) // rejoin the same handful of ids
		sess, superseded, err := st.admit(h, ProtocolVersion, nil, 4)
		if err != nil {
			t.Fatalf("cycle %d: %v", i, err)
		}
		if superseded != nil {
			t.Fatalf("cycle %d: unexpected supersede (old finished each cycle)", i)
		}
		to := SessionDetached
		if i%3 == 0 {
			to = SessionFailed
		}
		st.finish(sess, to, errors.New("churn"))
		if live := st.liveCount(); live != 0 {
			t.Fatalf("cycle %d: %d live sessions after finish", i, live)
		}
	}
	if got := st.retiredCount(); got != retain {
		t.Fatalf("retained %d snapshots, want exactly the cap %d", got, retain)
	}
	if got := st.evictedCount(); got != cycles-retain {
		t.Fatalf("evicted %d snapshots, want %d", got, cycles-retain)
	}
	if n := len(st.snapshots()); n != retain {
		t.Fatalf("snapshots() returned %d, want %d", n, retain)
	}
}

// TestSessionStateMachineFencing: terminal states are final — a fenced
// incarnation's late transitions are no-ops.
func TestSessionStateMachineFencing(t *testing.T) {
	st := newSessionStore(4)
	sess, _, err := st.admit(tinyHello(0), ProtocolVersion, nil, 1)
	if err != nil {
		t.Fatal(err)
	}
	sess.setState(SessionTraining)
	st.finish(sess, SessionSuperseded, ErrSuperseded)
	// The dying goroutine of the old epoch now tries to fail and detach.
	st.finish(sess, SessionFailed, errors.New("late failure"))
	sess.setState(SessionTraining)
	snap := sess.snapshot()
	if snap.State != SessionSuperseded || snap.Err != ErrSuperseded.Error() {
		t.Fatalf("fenced session mutated: %+v", snap)
	}
	if got := st.retiredCount(); got != 1 {
		t.Fatalf("retired %d snapshots, want 1 (no double retire)", got)
	}
	// Illegal non-terminal transitions are also rejected.
	if validTransition(SessionJoined, SessionEvaluating) {
		t.Fatal("joined → evaluating should be invalid")
	}
	if validTransition(SessionDetached, SessionTraining) {
		t.Fatal("detached → training should be invalid")
	}
}

// TestMarkResumedSeedsCheckpointRing: a resumed incarnation inherits
// its restore step as its newest checkpoint, so a drain arriving before
// the first fresh checkpoint still reports a resumable shutdown step
// (instead of 0, which would make the UE discard its half).
func TestMarkResumedSeedsCheckpointRing(t *testing.T) {
	st := newSessionStore(4)
	sess, _, err := st.admit(tinyHello(0), ProtocolVersion, nil, 1)
	if err != nil {
		t.Fatal(err)
	}
	sess.markResumed(100)
	if got := sess.lastCheckpoint(); got != 100 {
		t.Fatalf("lastCheckpoint after resume = %d, want 100", got)
	}
}

// TestBSServerChurnBounded is the end-to-end leak regression: 100
// join/fail/rejoin cycles against a live server must leave zero live
// sessions and a bounded snapshot history.
func TestBSServerChurnBounded(t *testing.T) {
	const retain, cycles = 8, 100
	prov := cachedProvision()
	srv, err := NewBSServer(ServerConfig{
		MaxUE: 2, Steps: 50, Retain: retain, Provision: prov,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < cycles; i++ {
		h := tinyHello(i % 3)
		cfg, _, _, err := prov(h)
		if err != nil {
			t.Fatal(err)
		}
		h.ConfigFP = cfg.Fingerprint()
		ueConn, bsConn := net.Pipe()
		done := make(chan error, 1)
		go func() { done <- srv.Handle(bsConn) }()
		if _, err := JoinSession(ueConn, h); err != nil {
			t.Fatalf("cycle %d: join: %v", i, err)
		}
		ueConn.Close() // die mid-round, as a blocked UE would
		if err := <-done; err == nil {
			t.Fatalf("cycle %d: session survived its UE dying", i)
		}
		if live := srv.ActiveSessions(); live != 0 {
			t.Fatalf("cycle %d: %d sessions still live", i, live)
		}
	}
	if got := len(srv.Sessions()); got != retain {
		t.Fatalf("server retains %d snapshots after %d cycles, want %d", got, cycles, retain)
	}
}

// ---- idle timeout --------------------------------------------------------------

// TestBSServerIdleTimeoutFreesSlot: a UE that joins and then wedges
// mid-protocol must be failed by the idle deadline, freeing its MaxUE
// slot for the next UE.
func TestBSServerIdleTimeoutFreesSlot(t *testing.T) {
	prov := cachedProvision()
	srv, err := NewBSServer(ServerConfig{
		MaxUE: 1, Steps: 10, EvalEvery: 5, ValAnchors: 8,
		IdleTimeout: 150 * time.Millisecond,
		Provision:   prov,
	})
	if err != nil {
		t.Fatal(err)
	}

	h := tinyHello(0)
	cfg, _, _, err := prov(h)
	if err != nil {
		t.Fatal(err)
	}
	h.ConfigFP = cfg.Fingerprint()
	ueConn, bsConn := net.Pipe()
	done := make(chan error, 1)
	go func() { done <- srv.Handle(bsConn) }()
	if _, err := JoinSession(ueConn, h); err != nil {
		t.Fatal(err)
	}
	// Wedge: hold the connection open but never read the batch request.
	select {
	case err := <-done:
		if !errors.Is(err, ErrIdleTimeout) {
			t.Fatalf("wedged session failed with %v, want ErrIdleTimeout", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("idle timeout never fired")
	}
	ueConn.Close()
	if live := srv.ActiveSessions(); live != 0 {
		t.Fatalf("%d sessions live after idle eviction", live)
	}
	snaps := srv.Sessions()
	if len(snaps) != 1 || snaps[0].State != SessionFailed || !strings.Contains(snaps[0].Err, "idle") {
		t.Fatalf("want failed-idle snapshot, got %+v", snaps)
	}

	// The freed slot admits and completes a fresh session.
	h2 := tinyHello(1)
	cfg2, d2, _, err := prov(h2)
	if err != nil {
		t.Fatal(err)
	}
	h2.ConfigFP = cfg2.Fingerprint()
	ueConn2, bsConn2 := net.Pipe()
	done2 := make(chan error, 1)
	go func() { done2 <- srv.Handle(bsConn2) }()
	if err := ServeUE(ueConn2, h2, cfg2, d2); err != nil {
		t.Fatalf("post-eviction UE: %v", err)
	}
	if err := <-done2; err != nil {
		t.Fatalf("post-eviction session: %v", err)
	}
}

// ---- supersede on rejoin -------------------------------------------------------

// TestBSServerSupersedeOnRejoin: a rejoin whose predecessor connection
// is half-dead must be admitted — the old epoch is fenced and its conn
// closed — instead of being refused while the corpse holds the slot.
func TestBSServerSupersedeOnRejoin(t *testing.T) {
	prov := cachedProvision()
	srv, err := NewBSServer(ServerConfig{
		MaxUE: 1, Steps: 10, EvalEvery: 5, ValAnchors: 8, Provision: prov,
	})
	if err != nil {
		t.Fatal(err)
	}
	h := tinyHello(0)
	cfg, d, _, err := prov(h)
	if err != nil {
		t.Fatal(err)
	}
	h.ConfigFP = cfg.Fingerprint()

	// First incarnation joins, then stops serving without closing.
	oldUE, oldBS := net.Pipe()
	oldDone := make(chan error, 1)
	go func() { oldDone <- srv.Handle(oldBS) }()
	if _, err := JoinSession(oldUE, h); err != nil {
		t.Fatal(err)
	}

	// Second incarnation with the same id trains to completion.
	newUE, newBS := net.Pipe()
	newDone := make(chan error, 1)
	go func() { newDone <- srv.Handle(newBS) }()
	if err := ServeUE(newUE, h, cfg, d); err != nil {
		t.Fatalf("superseding UE: %v", err)
	}
	if err := <-newDone; err != nil {
		t.Fatalf("superseding session: %v", err)
	}
	select {
	case err := <-oldDone:
		if err == nil {
			t.Fatal("fenced incarnation finished cleanly")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("fenced incarnation never unblocked — its conn was not closed")
	}

	var states []SessionState
	var epochs []uint32
	for _, s := range srv.Sessions() {
		states = append(states, s.State)
		epochs = append(epochs, s.Epoch)
	}
	if len(states) != 2 || states[0] != SessionSuperseded || states[1] != SessionDetached {
		t.Fatalf("want [superseded detached], got %v", states)
	}
	if epochs[1] <= epochs[0] {
		t.Fatalf("epochs not monotonic: %v", epochs)
	}
}

// TestBSServerSupersedeRace hammers concurrent rejoins of one session id
// under the race detector: every handler must terminate and at most one
// incarnation may stay live.
func TestBSServerSupersedeRace(t *testing.T) {
	prov := cachedProvision()
	srv, err := NewBSServer(ServerConfig{
		MaxUE: 1, Steps: 10, EvalEvery: 5, ValAnchors: 8, Provision: prov,
	})
	if err != nil {
		t.Fatal(err)
	}
	h := tinyHello(0)
	cfg, _, _, err := prov(h)
	if err != nil {
		t.Fatal(err)
	}
	h.ConfigFP = cfg.Fingerprint()

	const rejoins = 8
	var wg sync.WaitGroup
	conns := make([]io.Closer, rejoins)
	for i := 0; i < rejoins; i++ {
		ueConn, bsConn := net.Pipe()
		conns[i] = ueConn
		wg.Add(2)
		go func() {
			defer wg.Done()
			_ = srv.Handle(bsConn)
		}()
		go func() {
			defer wg.Done()
			_, _ = JoinSession(ueConn, h) // losers may see a dead conn
		}()
	}
	for _, c := range conns {
		c.Close()
	}
	wg.Wait()
	if live := srv.ActiveSessions(); live != 0 {
		t.Fatalf("%d sessions live after all conns closed", live)
	}
}

// ---- checkpoint / resume -------------------------------------------------------

// TestPeerCheckpointRestoreEquivalence is the peer-level contract:
// restoring both halves from a mid-run checkpoint and training the
// remaining steps yields bit-identical final train state to the
// uninterrupted run.
func TestPeerCheckpointRestoreEquivalence(t *testing.T) {
	d := tinyDataset(t, 150)
	cfg := tinyConfig(split.ImageRF, 4)
	sp, err := dataset.NewSplit(d, cfg.SeqLen, cfg.HorizonFrames, 100)
	if err != nil {
		t.Fatal(err)
	}
	const ckptAt, steps = 7, 12

	run := func(restoreUE, restoreBS []byte, from, to int) (ueFinal, bsFinal, ueMid, bsMid []byte) {
		ueConn, bsConn := net.Pipe()
		ue, err := NewUEPeer(cfg, d, ueConn)
		if err != nil {
			t.Fatal(err)
		}
		bs, err := NewBSPeer(cfg, d, sp, bsConn)
		if err != nil {
			t.Fatal(err)
		}
		if restoreUE != nil {
			if got, err := ue.RestoreState(bytes.NewReader(restoreUE)); err != nil || got != from {
				t.Fatalf("restore UE: step %d err %v", got, err)
			}
			if got, err := bs.RestoreState(bytes.NewReader(restoreBS)); err != nil || got != from {
				t.Fatalf("restore BS: step %d err %v", got, err)
			}
		}
		var midBuf bytes.Buffer
		ue.OnCheckpoint = func(step uint32) error { return ue.SaveState(&midBuf, int(step)) }
		serveErr := make(chan error, 1)
		go func() { serveErr <- ue.Serve() }()
		for s := from + 1; s <= to; s++ {
			if _, err := bs.TrainStep(); err != nil {
				t.Fatal(err)
			}
			if s == ckptAt {
				var b bytes.Buffer
				if err := bs.SaveState(&b, s); err != nil {
					t.Fatal(err)
				}
				bsMid = b.Bytes()
				if err := WriteMessage(bsConn, &Message{Type: MsgCheckpoint, Step: uint32(s)}); err != nil {
					t.Fatal(err)
				}
			}
		}
		if err := bs.Shutdown(); err != nil {
			t.Fatal(err)
		}
		if err := <-serveErr; err != nil {
			t.Fatal(err)
		}
		ueConn.Close()
		bsConn.Close()
		ueMid = midBuf.Bytes()
		var ub, bb bytes.Buffer
		if err := ue.SaveState(&ub, to); err != nil {
			t.Fatal(err)
		}
		if err := bs.SaveState(&bb, to); err != nil {
			t.Fatal(err)
		}
		return ub.Bytes(), bb.Bytes(), ueMid, bsMid
	}

	ueFull, bsFull, ueMid, bsMid := run(nil, nil, 0, steps)
	if len(ueMid) == 0 || len(bsMid) == 0 {
		t.Fatal("mid-run checkpoints not captured")
	}
	ueResumed, bsResumed, _, _ := run(ueMid, bsMid, ckptAt, steps)
	if !bytes.Equal(ueFull, ueResumed) {
		t.Fatal("UE half: checkpoint-restore path diverged from uninterrupted run")
	}
	if !bytes.Equal(bsFull, bsResumed) {
		t.Fatal("BS half: checkpoint-restore path diverged from uninterrupted run")
	}
}

// resumeHarnessRun drives one full UESession against a checkpointing
// server, optionally cutting the first connection's UE-side writes
// after cutBytes. It returns the session handle and the server.
func resumeHarnessRun(t *testing.T, prov Provision, dir string, cutBytes int64) (*UESession, *BSServer, *pipeDialer) {
	t.Helper()
	srv, err := NewBSServer(ServerConfig{
		MaxUE: 1, Steps: 20, EvalEvery: 10, ValAnchors: 16,
		Provision: prov, CheckpointDir: dir, CheckpointEvery: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	h := tinyHello(0)
	cfg, d, _, err := prov(h)
	if err != nil {
		t.Fatal(err)
	}
	dialer := &pipeDialer{srv: srv}
	if cutBytes > 0 {
		dialer.faults = map[int]func(io.ReadWriteCloser) io.ReadWriteCloser{
			0: func(c io.ReadWriteCloser) io.ReadWriteCloser { return NewFaultConn(c, -1, cutBytes) },
		}
	}
	us := &UESession{
		Hello: h, Cfg: cfg, Data: d,
		Backoff: Backoff{Base: time.Millisecond, Max: 5 * time.Millisecond},
		sleep:   func(time.Duration) {},
	}
	if err := us.Run(dialer.dial); err != nil {
		t.Fatalf("UESession.Run: %v", err)
	}
	dialer.wait()
	return us, srv, dialer
}

// TestBSServerResumeMatchesUninterrupted is the acceptance criterion end
// to end: a UE whose connection dies mid-training reconnects, resumes
// from the last checkpoint, and finishes with train state on both
// halves byte-identical to the run that was never interrupted.
func TestBSServerResumeMatchesUninterrupted(t *testing.T) {
	prov := cachedProvision()

	cleanDir, faultDir := t.TempDir(), t.TempDir()
	clean, cleanSrv, _ := resumeHarnessRun(t, prov, cleanDir, 0)
	fault, faultSrv, _ := resumeHarnessRun(t, prov, faultDir, 3500)

	if clean.Resumes() != 0 {
		t.Fatalf("clean run resumed %d times", clean.Resumes())
	}
	if fault.Resumes() == 0 {
		t.Fatal("fault run never resumed — cut landed after training finished?")
	}
	if clean.LastCheckpointStep() != 20 || fault.LastCheckpointStep() != 20 {
		t.Fatalf("final checkpoint steps %d/%d, want 20/20",
			clean.LastCheckpointStep(), fault.LastCheckpointStep())
	}

	// UE halves: the in-memory checkpoints at step 20 must match bit
	// for bit.
	if !bytes.Equal(clean.ckpt, fault.ckpt) {
		t.Fatal("UE half diverged between uninterrupted and resumed runs")
	}
	// BS halves: the step-20 checkpoint files must match bit for bit.
	read := func(dir string) []byte {
		data, err := os.ReadFile(ckptPath(dir, "ue-0", 20))
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	if !bytes.Equal(read(cleanDir), read(faultDir)) {
		t.Fatal("BS half diverged between uninterrupted and resumed runs")
	}

	// The resumed incarnation is visible in the lifecycle records.
	snaps := faultSrv.Sessions()
	last := snaps[len(snaps)-1]
	if last.State != SessionDetached || last.ResumedFrom == 0 || last.Metrics.Resumes.Load() != 1 {
		t.Fatalf("resumed incarnation snapshot: %+v", last)
	}
	if len(snaps) < 2 {
		t.Fatalf("want failed + detached incarnations, got %d snapshots", len(snaps))
	}
	if got := cleanSrv.Sessions(); len(got) != 1 || got[0].Steps != 20 {
		t.Fatalf("clean run snapshots: %+v", got)
	}

	// Completed sessions garbage-collect their checkpoints down to the
	// final-step artifact — every incarnation's intermediates included —
	// so CheckpointDir stays flat over churn.
	for _, dir := range []string{cleanDir, faultDir} {
		matches, err := filepath.Glob(filepath.Join(dir, "*.bs.ckpt"))
		if err != nil {
			t.Fatal(err)
		}
		if len(matches) != 1 || matches[0] != ckptPath(dir, "ue-0", 20) {
			t.Fatalf("%s retains %v, want only the step-20 artifact", dir, matches)
		}
	}
}

// TestUESessionFreshJoinFallbackWhenResumeRejected: a UE whose resume
// token the BS cannot honour (checkpoints lost) retrains from scratch
// instead of dying — resume is best-effort, not load-bearing.
func TestUESessionFreshJoinFallbackWhenResumeRejected(t *testing.T) {
	prov := cachedProvision()
	srv, err := NewBSServer(ServerConfig{
		MaxUE: 1, Steps: 10, EvalEvery: 5, ValAnchors: 8,
		Provision: prov, // no CheckpointDir: the BS cannot resume anyone
	})
	if err != nil {
		t.Fatal(err)
	}
	h := tinyHello(0)
	cfg, d, _, err := prov(h)
	if err != nil {
		t.Fatal(err)
	}
	us := &UESession{
		Hello: h, Cfg: cfg, Data: d,
		Backoff: Backoff{Base: time.Millisecond},
		sleep:   func(time.Duration) {},
	}
	us.ckpt, us.ckptStep = []byte("stale token from a previous life"), 7
	dialer := &pipeDialer{srv: srv}
	if err := us.Run(dialer.dial); err != nil {
		t.Fatalf("resume-impossible session should retrain, got %v", err)
	}
	dialer.wait()
	if got := us.Resumes(); got != 0 {
		t.Fatalf("fell back to fresh join but counted %d resumes", got)
	}
	snaps := srv.Sessions()
	last := snaps[len(snaps)-1]
	if last.State != SessionDetached || last.Steps != 10 || last.ResumedFrom != 0 {
		t.Fatalf("fallback session snapshot: %+v", last)
	}
}

// TestUESessionKeepsTokenOnUnrelatedRejection: a rejection that is NOT
// flagged resume-specific (here: provisioning failure) must stay fatal
// and must not destroy the UE's checkpoint — only the BS's structured
// flag, never prose in the reason, may trigger the fresh-join fallback.
func TestUESessionKeepsTokenOnUnrelatedRejection(t *testing.T) {
	srv, err := NewBSServer(ServerConfig{
		MaxUE: 1, CheckpointDir: t.TempDir(),
		Provision: func(Hello) (split.Config, *dataset.Dataset, *dataset.Split, error) {
			return split.Config{}, nil, nil, errors.New("provision rig down (checkpoint fingerprint resume)")
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	prov := cachedProvision()
	h := tinyHello(0)
	cfg, d, _, err := prov(h)
	if err != nil {
		t.Fatal(err)
	}
	us := &UESession{Hello: h, Cfg: cfg, Data: d, sleep: func(time.Duration) {}}
	us.ckpt, us.ckptStep = []byte("token"), 5
	dialer := &pipeDialer{srv: srv}
	err = us.Run(dialer.dial)
	dialer.wait()
	if !errors.Is(err, ErrSessionRejected) || errors.Is(err, ErrResumeRejected) {
		t.Fatalf("unrelated rejection: err = %v, want plain ErrSessionRejected", err)
	}
	if us.LastCheckpointStep() != 5 {
		t.Fatal("unrelated rejection destroyed the resume token")
	}
	if dialer.dials != 1 {
		t.Fatalf("unrelated rejection redialled %d times", dialer.dials)
	}
}

// TestUESessionPurgesDiskCheckpointOnCompletion: a cleanly completed
// session deletes its on-disk UE checkpoint, so relaunching the same
// command trains a fresh run instead of silently "resuming" at the
// final step and doing nothing.
func TestUESessionPurgesDiskCheckpointOnCompletion(t *testing.T) {
	prov := cachedProvision()
	srv, err := NewBSServer(ServerConfig{
		MaxUE: 1, Steps: 20, EvalEvery: 10, ValAnchors: 16,
		Provision: prov, CheckpointDir: t.TempDir(), CheckpointEvery: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	h := tinyHello(0)
	cfg, d, _, err := prov(h)
	if err != nil {
		t.Fatal(err)
	}
	ueDir := t.TempDir()
	run := func() {
		t.Helper()
		us := &UESession{Hello: h, Cfg: cfg, Data: d, CheckpointDir: ueDir, sleep: func(time.Duration) {}}
		dialer := &pipeDialer{srv: srv}
		if err := us.Run(dialer.dial); err != nil {
			t.Fatal(err)
		}
		dialer.wait()
		if _, err := os.Stat(us.ckptFile()); !os.IsNotExist(err) {
			t.Fatalf("UE checkpoint survived a completed session: %v", err)
		}
	}
	run()
	run() // the relaunch must train a full fresh run, not resume-and-exit
	snaps := srv.Sessions()
	last := snaps[len(snaps)-1]
	if last.Steps != 20 || last.ResumedFrom != 0 {
		t.Fatalf("relaunched session snapshot: %+v", last)
	}
	if len(snaps) != 2 {
		t.Fatalf("want 2 full incarnations, got %d", len(snaps))
	}
}

// TestBSServerResumeStaleFingerprintRejected: a resume token presented
// with a drifted session configuration must be refused at join time.
func TestBSServerResumeStaleFingerprintRejected(t *testing.T) {
	prov := cachedProvision()
	dir := t.TempDir()
	us, srv, _ := resumeHarnessRun(t, prov, dir, 0)
	step := us.LastCheckpointStep()
	if step == 0 {
		t.Fatal("no checkpoint to resume from")
	}

	// Same session id, same resume step — but the UE was relaunched
	// with a different pooling width, so the derived config drifted.
	h2 := tinyHello(0)
	h2.Pool = 8
	cfg2, _, _, err := prov(h2)
	if err != nil {
		t.Fatal(err)
	}
	h2.ConfigFP = cfg2.Fingerprint()
	h2.ResumeStep = step
	ueConn, bsConn := net.Pipe()
	done := make(chan error, 1)
	go func() { done <- srv.Handle(bsConn) }()
	_, joinErr := JoinSession(ueConn, h2)
	if joinErr == nil || !strings.Contains(joinErr.Error(), "fingerprint") {
		t.Fatalf("stale-config resume: err = %v, want fingerprint rejection", joinErr)
	}
	if !errors.Is(joinErr, ErrSessionRejected) {
		t.Fatalf("stale-config resume should be a deliberate rejection, got %v", joinErr)
	}
	if !errors.Is(joinErr, ErrResumeRejected) {
		t.Fatalf("stale-checkpoint rejection should carry the resume-specific flag, got %v", joinErr)
	}
	if err := <-done; err == nil {
		t.Fatal("server accepted stale-config resume")
	}
	ueConn.Close()
}

// TestBSServerResumeMissingCheckpointRejected: a resume token naming a
// step with no retained checkpoint is refused, as is any resume against
// a server without checkpointing.
func TestBSServerResumeMissingCheckpointRejected(t *testing.T) {
	prov := cachedProvision()
	h := tinyHello(0)
	cfg, _, _, err := prov(h)
	if err != nil {
		t.Fatal(err)
	}
	h.ConfigFP = cfg.Fingerprint()
	h.ResumeStep = 40

	join := func(srv *BSServer) error {
		ueConn, bsConn := net.Pipe()
		done := make(chan error, 1)
		go func() { done <- srv.Handle(bsConn) }()
		_, err := JoinSession(ueConn, h)
		<-done
		ueConn.Close()
		return err
	}

	withCkpt, err := NewBSServer(ServerConfig{
		MaxUE: 1, Provision: prov, CheckpointDir: t.TempDir(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := join(withCkpt); err == nil || !strings.Contains(err.Error(), "no checkpoint") {
		t.Fatalf("missing checkpoint: err = %v", err)
	}

	without, err := NewBSServer(ServerConfig{MaxUE: 1, Provision: prov})
	if err != nil {
		t.Fatal(err)
	}
	if err := join(without); err == nil || !strings.Contains(err.Error(), "checkpoint") {
		t.Fatalf("resume without checkpoint dir: err = %v", err)
	}
}

// ---- drain ---------------------------------------------------------------------

// TestBSServerDrain: Drain stops new admissions, checkpoints live
// sessions at their next step boundary and detaches their UEs cleanly.
func TestBSServerDrain(t *testing.T) {
	prov := cachedProvision()
	dir := t.TempDir()
	srv, err := NewBSServer(ServerConfig{
		MaxUE: 2, Steps: 1 << 30, EvalEvery: 1 << 30, ValAnchors: 8,
		Provision: prov, CheckpointDir: dir, CheckpointEvery: 1 << 30,
	})
	if err != nil {
		t.Fatal(err)
	}
	h := tinyHello(0)
	cfg, d, _, err := prov(h)
	if err != nil {
		t.Fatal(err)
	}
	dialer := &pipeDialer{srv: srv}
	us := &UESession{Hello: h, Cfg: cfg, Data: d, sleep: func(time.Duration) {}}
	runErr := make(chan error, 1)
	go func() { runErr <- us.Run(dialer.dial) }()

	// Wait for training to actually progress, then drain.
	deadline := time.Now().Add(5 * time.Second)
	for {
		snaps := srv.Sessions()
		if len(snaps) == 1 && snaps[0].Steps >= 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("session never started stepping")
		}
		time.Sleep(5 * time.Millisecond)
	}
	srv.Drain()
	select {
	case err := <-runErr:
		if err != nil {
			t.Fatalf("drained UE should detach cleanly, got %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("drain did not detach the session")
	}
	dialer.wait()

	snaps := srv.Sessions()
	if len(snaps) != 1 || snaps[0].State != SessionDetached {
		t.Fatalf("drained session snapshot: %+v", snaps)
	}
	steps := snaps[0].Steps
	if steps <= 0 || steps >= 1<<30 {
		t.Fatalf("drained after %d steps", steps)
	}
	// The drain left a resumable checkpoint at the last completed step
	// on both halves.
	if _, err := os.Stat(ckptPath(dir, h.SessionID, steps)); err != nil {
		t.Fatalf("no BS drain checkpoint at step %d: %v", steps, err)
	}
	if got := us.LastCheckpointStep(); got != uint32(steps) {
		t.Fatalf("UE drain checkpoint at %d, want %d", got, steps)
	}
	// New sessions are refused while draining.
	h2 := tinyHello(1)
	cfg2, _, _, err := prov(h2)
	if err != nil {
		t.Fatal(err)
	}
	h2.ConfigFP = cfg2.Fingerprint()
	ueConn, bsConn := net.Pipe()
	done := make(chan error, 1)
	go func() { done <- srv.Handle(bsConn) }()
	if _, err := JoinSession(ueConn, h2); err == nil || !strings.Contains(err.Error(), "draining") {
		t.Fatalf("join while draining: err = %v", err)
	}
	<-done
	ueConn.Close()
}

// ---- mixed-version interop -----------------------------------------------------

// readRawFrame reads one whole frame off the wire, returning its bytes.
func readRawFrame(t *testing.T, r io.Reader) []byte {
	t.Helper()
	header := make([]byte, 12)
	if _, err := io.ReadFull(r, header); err != nil {
		t.Fatal(err)
	}
	length := binary.BigEndian.Uint32(header[8:])
	rest := make([]byte, length+4)
	if _, err := io.ReadFull(r, rest); err != nil {
		t.Fatal(err)
	}
	return append(header, rest...)
}

// TestBSServerV2PeerInterop: a v2 UE joining a v3 server negotiates
// down — every server frame is stamped v2, no checkpoint messages are
// sent, and the session trains to a clean detach.
func TestBSServerV2PeerInterop(t *testing.T) {
	prov := cachedProvision()
	srv, err := NewBSServer(ServerConfig{
		MaxUE: 1, Steps: 6, EvalEvery: 3, ValAnchors: 8,
		Provision: prov, CheckpointDir: t.TempDir(), CheckpointEvery: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	h := tinyHello(0)
	cfg, d, _, err := prov(h)
	if err != nil {
		t.Fatal(err)
	}
	h.ConfigFP = cfg.Fingerprint()
	h.Version = 2

	ueConn, bsConn := net.Pipe()
	done := make(chan error, 1)
	go func() { done <- srv.Handle(bsConn) }()

	// Hand-rolled v2 join: the hello frame is laid out and stamped v2.
	if err := WriteMessageVersion(ueConn, &Message{Type: MsgSessionHello, Hello: &h}, 2); err != nil {
		t.Fatal(err)
	}
	frame := readRawFrame(t, ueConn)
	if frame[3] != 2 {
		t.Fatalf("ack stamped version %d, want 2 — a v2 reader would reject it", frame[3])
	}
	ack, err := ReadMessage(bytes.NewReader(frame))
	if err != nil {
		t.Fatal(err)
	}
	if ack.Type != MsgSessionAck || ack.Hello == nil || ack.Hello.Err != "" {
		t.Fatalf("v2 join rejected: %+v", ack)
	}

	// Serve as a v2 peer; any MsgCheckpoint would fail the session
	// since v2 peers don't know the message.
	ue, err := NewUEPeer(cfg, d, ueConn)
	if err != nil {
		t.Fatal(err)
	}
	ue.Ver = 2
	ue.OnCheckpoint = func(step uint32) error {
		return fmt.Errorf("v2 session received a checkpoint instruction at step %d", step)
	}
	if err := ue.Serve(); err != nil {
		t.Fatalf("v2 UE serve: %v", err)
	}
	if err := <-done; err != nil {
		t.Fatalf("v2 session: %v", err)
	}
	snaps := srv.Sessions()
	if len(snaps) != 1 || snaps[0].State != SessionDetached || snaps[0].Version != 2 {
		t.Fatalf("v2 session snapshot: %+v", snaps)
	}
	if snaps[0].Metrics.Checkpoints.Load() != 0 {
		t.Fatalf("v2 session wrote %d checkpoints, want 0", snaps[0].Metrics.Checkpoints.Load())
	}
	// No stray checkpoint files either.
	matches, _ := filepath.Glob(filepath.Join(srv.cfg.CheckpointDir, "*.ckpt"))
	if len(matches) != 0 {
		t.Fatalf("v2 session left checkpoint files: %v", matches)
	}
}

// ---- client backoff ------------------------------------------------------------

func TestBackoffSchedule(t *testing.T) {
	b := Backoff{NoJitter: true}.withDefaults()
	if b.Delay(1) != 100*time.Millisecond {
		t.Fatalf("first delay %v", b.Delay(1))
	}
	if b.Delay(2) != 200*time.Millisecond || b.Delay(3) != 400*time.Millisecond {
		t.Fatalf("growth %v %v", b.Delay(2), b.Delay(3))
	}
	if b.Delay(50) != 5*time.Second {
		t.Fatalf("cap %v", b.Delay(50))
	}
}

// TestBackoffFullJitter: without NoJitter each delay is drawn from
// (0, ceiling] — bounded by the deterministic schedule, never zero, and
// not in lockstep across draws (thundering-herd breaker).
func TestBackoffFullJitter(t *testing.T) {
	b := Backoff{}.withDefaults()
	ceil := Backoff{NoJitter: true}.withDefaults()
	distinct := map[time.Duration]bool{}
	for attempt := 1; attempt <= 4; attempt++ {
		max := ceil.Delay(attempt)
		for i := 0; i < 64; i++ {
			d := b.Delay(attempt)
			if d <= 0 || d > max {
				t.Fatalf("attempt %d: jittered delay %v outside (0, %v]", attempt, d, max)
			}
			distinct[d] = true
		}
	}
	if len(distinct) < 8 {
		t.Fatalf("jittered delays suspiciously uniform: %d distinct values", len(distinct))
	}
}

// TestUESessionGivesUpAfterRetries: a dial that always fails must stop
// after the configured retry budget with the last error attached.
func TestUESessionGivesUpAfterRetries(t *testing.T) {
	prov := cachedProvision()
	h := tinyHello(0)
	cfg, d, _, err := prov(h)
	if err != nil {
		t.Fatal(err)
	}
	dials := 0
	us := &UESession{
		Hello: h, Cfg: cfg, Data: d,
		Backoff: Backoff{Base: time.Millisecond, Retries: 3},
		sleep:   func(time.Duration) {},
	}
	err = us.Run(func() (io.ReadWriteCloser, error) {
		dials++
		return nil, errors.New("no route to bs")
	})
	if err == nil || !strings.Contains(err.Error(), "gave up") {
		t.Fatalf("err = %v", err)
	}
	if dials != 4 { // initial attempt + 3 retries
		t.Fatalf("dialled %d times, want 4", dials)
	}
}

// TestUESessionRejectionIsFatal: a deliberate rejection ack must not be
// retried.
func TestUESessionRejectionIsFatal(t *testing.T) {
	prov := cachedProvision()
	srv, err := NewBSServer(ServerConfig{MaxUE: 1, Provision: prov})
	if err != nil {
		t.Fatal(err)
	}
	h := tinyHello(0)
	cfg, d, _, err := prov(h)
	if err != nil {
		t.Fatal(err)
	}
	us := &UESession{Hello: h, Cfg: cfg, Data: d, sleep: func(time.Duration) {}}
	us.Hello.ConfigFP = 0xDEADBEEF // guaranteed mismatch
	dialer := &pipeDialer{srv: srv}
	err = us.Run(dialer.dial)
	if !errors.Is(err, ErrSessionRejected) {
		t.Fatalf("err = %v, want ErrSessionRejected", err)
	}
	dialer.wait()
	if dialer.dials != 1 {
		t.Fatalf("rejected session redialled %d times", dialer.dials)
	}
}
