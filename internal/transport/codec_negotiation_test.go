package transport

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"math/rand"
	"net"
	"strings"
	"testing"
	"time"

	"repro/internal/compress"
	"repro/internal/tensor"
)

// ---- codec negotiation ---------------------------------------------------------

// TestSessionNegotiatesCodec: a session that asks for each codec in its
// hello must be granted it, train to detach, and (for the lossy codecs)
// move strictly fewer uplink bytes than Raw.
func TestSessionNegotiatesCodec(t *testing.T) {
	bytesIn := make(map[compress.ID]int64)
	for _, id := range compress.IDs() {
		srv, err := NewBSServer(ServerConfig{
			MaxUE: 1, Steps: 8, EvalEvery: 4, ValAnchors: 8,
			Provision: tinySessionEnv,
		})
		if err != nil {
			t.Fatal(err)
		}
		h := tinyHello(0)
		h.Codec = uint8(id)
		cfg, d, _, err := tinySessionEnv(h)
		if err != nil {
			t.Fatal(err)
		}
		cfg.Codec = id
		h.ConfigFP = cfg.Fingerprint()

		ueConn, bsConn := net.Pipe()
		done := make(chan error, 1)
		go func() { done <- srv.Handle(bsConn) }()
		if err := ServeUE(ueConn, h, cfg, d); err != nil {
			t.Fatalf("codec %v: UE: %v", id, err)
		}
		if err := <-done; err != nil {
			t.Fatalf("codec %v: BS: %v", id, err)
		}
		snaps := srv.Sessions()
		if len(snaps) != 1 || snaps[0].State != SessionDetached {
			t.Fatalf("codec %v: session did not detach: %+v", id, snaps)
		}
		if uint8(id) != snaps[0].Hello.Codec {
			t.Fatalf("codec %v: session recorded codec %d", id, snaps[0].Hello.Codec)
		}
		bytesIn[id] = snaps[0].BytesIn
	}
	for _, id := range []compress.ID{compress.CodecFloat16, compress.CodecQuantInt8, compress.CodecTopK} {
		if bytesIn[id] >= bytesIn[compress.CodecRaw] {
			t.Errorf("codec %v moved %d uplink bytes, raw moved %d — no compression on the wire",
				id, bytesIn[id], bytesIn[compress.CodecRaw])
		}
	}
}

// TestJoinSessionRejectsCodecDowngrade: a UE must refuse an ack that
// grants a different codec than it requested.
func TestJoinSessionRejectsCodecDowngrade(t *testing.T) {
	ueConn, bsConn := net.Pipe()
	defer ueConn.Close()
	defer bsConn.Close()
	go func() {
		msg, err := ReadMessage(bsConn)
		if err != nil {
			return
		}
		ack := *msg.Hello
		ack.Codec = uint8(compress.CodecRaw) // ignore the request
		_ = WriteMessage(bsConn, &Message{Type: MsgSessionAck, Hello: &ack})
	}()
	h := Hello{SessionID: "ue-x", Seed: 1, Frames: 100, Pool: 4, Codec: uint8(compress.CodecQuantInt8)}
	if _, err := JoinSession(ueConn, h); err == nil || !strings.Contains(err.Error(), "codec") {
		t.Fatalf("downgraded ack accepted (err = %v)", err)
	}
}

// ---- negative-path handshakes --------------------------------------------------

// handleWithAck runs srv.Handle over a pipe while the client side sends
// raw bytes and then tries to read one diagnostic ack. It returns
// Handle's error and the ack (nil if none arrived).
func handleWithAck(t *testing.T, srv *BSServer, raw []byte) (error, *Message) {
	t.Helper()
	ueConn, bsConn := net.Pipe()
	handleErr := make(chan error, 1)
	go func() { handleErr <- srv.Handle(bsConn) }()

	// Write and read concurrently: the server may refuse after reading
	// only the frame header, leaving the writer mid-frame — net.Pipe has
	// no buffering, so a sequential write-then-read would deadlock
	// against the server's ack write (a real TCP socket would buffer).
	go func() { _, _ = ueConn.Write(raw) }()
	ackCh := make(chan *Message, 1)
	go func() {
		msg, err := ReadMessage(ueConn)
		if err != nil {
			ackCh <- nil
			return
		}
		ackCh <- msg
	}()

	var err error
	select {
	case err = <-handleErr:
	case <-time.After(5 * time.Second):
		t.Fatal("server hung on malformed handshake")
	}
	var ack *Message
	select {
	case ack = <-ackCh:
	case <-time.After(5 * time.Second):
		t.Fatal("client hung waiting for diagnostic ack")
	}
	ueConn.Close()
	return err, ack
}

func negotiationServer(t *testing.T) *BSServer {
	t.Helper()
	srv, err := NewBSServer(ServerConfig{MaxUE: 1, Steps: 1, Provision: tinySessionEnv})
	if err != nil {
		t.Fatal(err)
	}
	return srv
}

func helloFrame(t *testing.T, h Hello) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := WriteMessage(&buf, &Message{Type: MsgSessionHello, Hello: &h}); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// restamp rewrites a frame's version byte and fixes the CRC.
func restamp(frame []byte, version byte) []byte {
	out := append([]byte(nil), frame...)
	out[3] = version
	crc := crc32.NewIEEE()
	crc.Write(out[:len(out)-4])
	binary.BigEndian.PutUint32(out[len(out)-4:], crc.Sum32())
	return out
}

// TestServerRefusesNewerFrameVersion: a frame stamped with a future
// protocol version must draw a diagnostic ack, not a hang or a bare
// close.
func TestServerRefusesNewerFrameVersion(t *testing.T) {
	frame := restamp(helloFrame(t, tinyHello(0)), ProtocolVersion+1)
	err, ack := handleWithAck(t, negotiationServer(t), frame)
	if err == nil {
		t.Fatal("future-version hello accepted")
	}
	if ack == nil || ack.Type != MsgSessionAck || ack.Hello == nil || ack.Hello.Err == "" {
		t.Fatalf("no diagnostic ack for future-version hello (got %+v)", ack)
	}
	if !strings.Contains(ack.Hello.Err, "version") {
		t.Fatalf("ack reason %q does not mention the version", ack.Hello.Err)
	}
}

// TestServerRefusesUnknownCodec: an unknown codec id in the hello must
// be rejected at join time with the codec named in the ack.
func TestServerRefusesUnknownCodec(t *testing.T) {
	h := tinyHello(0)
	h.Codec = 200
	err, ack := handleWithAck(t, negotiationServer(t), helloFrame(t, h))
	if err == nil || !strings.Contains(err.Error(), "codec") {
		t.Fatalf("unknown codec err = %v", err)
	}
	if ack == nil || ack.Hello == nil || !strings.Contains(ack.Hello.Err, "codec") {
		t.Fatalf("no codec diagnostic in ack (got %+v)", ack)
	}
}

// TestServerRefusesCorruptHello: a hello whose payload fails the CRC
// must be refused with a diagnostic ack.
func TestServerRefusesCorruptHello(t *testing.T) {
	frame := helloFrame(t, tinyHello(0))
	frame[14] ^= 0xFF // corrupt payload without fixing the CRC
	err, ack := handleWithAck(t, negotiationServer(t), frame)
	if err == nil {
		t.Fatal("corrupt hello accepted")
	}
	if ack == nil || ack.Hello == nil || ack.Hello.Err == "" {
		t.Fatalf("no diagnostic ack for corrupt hello (got %+v)", ack)
	}
}

// TestServerRejectsTruncatedHello: a dialer that sends half a hello and
// disappears must terminate the session handler promptly.
func TestServerRejectsTruncatedHello(t *testing.T) {
	frame := helloFrame(t, tinyHello(0))
	srv := negotiationServer(t)
	ueConn, bsConn := net.Pipe()
	handleErr := make(chan error, 1)
	go func() { handleErr <- srv.Handle(bsConn) }()
	if _, err := ueConn.Write(frame[:len(frame)/2]); err != nil {
		t.Fatal(err)
	}
	ueConn.Close()
	select {
	case err := <-handleErr:
		if err == nil {
			t.Fatal("truncated hello accepted")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("server hung on truncated hello")
	}
}

// ---- mixed-version compatibility -----------------------------------------------

// legacyFrame hand-builds a version-v frame the pre-codec protocol
// would have produced: anchors, then an optional bare Depth64 tensor
// section, then an optional hello section without the codec byte.
func legacyFrame(t *testing.T, version byte, msgType MsgType, step uint32, tt *tensor.Tensor, hello []byte) []byte {
	t.Helper()
	payload := binary.BigEndian.AppendUint32(nil, 0) // no anchors
	if tt == nil {
		payload = append(payload, 0)
	} else {
		var enc bytes.Buffer
		if err := tensor.Encode(&enc, tt, tensor.Depth64); err != nil {
			t.Fatal(err)
		}
		payload = append(payload, 1)
		payload = append(payload, enc.Bytes()...)
	}
	if hello != nil {
		payload = append(payload, 1)
		payload = append(payload, hello...)
	}
	header := make([]byte, 12)
	header[0], header[1] = frameMagic[0], frameMagic[1]
	header[2], header[3] = byte(msgType), version
	binary.BigEndian.PutUint32(header[4:], step)
	binary.BigEndian.PutUint32(header[8:], uint32(len(payload)))
	crc := crc32.NewIEEE()
	crc.Write(header)
	crc.Write(payload)
	frame := append(header, payload...)
	return binary.BigEndian.AppendUint32(frame, crc.Sum32())
}

// TestLegacyTensorFrameDecodesAsRaw: version-0/1 tensor sections (bare
// Depth64, no codec id) must still decode, mapping onto the Raw codec.
func TestLegacyTensorFrameDecodesAsRaw(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	want := tensor.Randn(rng, 1, 2, 3)
	for _, version := range []byte{0, 1} {
		frame := legacyFrame(t, version, MsgActivations, 7, want, nil)
		got, err := ReadMessage(bytes.NewReader(frame))
		if err != nil {
			t.Fatalf("version %d: %v", version, err)
		}
		if got.Codec != compress.CodecRaw {
			t.Fatalf("version %d: codec %v, want raw", version, got.Codec)
		}
		if tensor.MaxAbsDiff(got.Tensor, want) != 0 {
			t.Fatalf("version %d: tensor not lossless", version)
		}
	}
}

// TestLegacyHelloDecodesAsRaw: a version-1 hello (no trailing codec
// byte) must decode with Codec == 0, i.e. the Raw codec.
func TestLegacyHelloDecodesAsRaw(t *testing.T) {
	// Build the version-1 hello section: no trailing codec byte.
	h := Hello{Version: 1, SessionID: "ue-legacy", Seed: 9, Frames: 100, Pool: 4}
	legacy, err := appendHello(nil, &h, 1)
	if err != nil {
		t.Fatal(err)
	}
	frame := legacyFrame(t, 1, MsgSessionHello, 0, nil, legacy)
	got, err := ReadMessage(bytes.NewReader(frame))
	if err != nil {
		t.Fatal(err)
	}
	if got.Hello == nil || got.Hello.SessionID != "ue-legacy" {
		t.Fatalf("legacy hello decoded to %+v", got.Hello)
	}
	if got.Hello.Codec != uint8(compress.CodecRaw) {
		t.Fatalf("legacy hello codec = %d, want raw", got.Hello.Codec)
	}
}

// TestFrameRejectsUnknownTensorCodec: a version-2 frame naming a codec
// the receiver does not implement must be rejected as a bad frame.
func TestFrameRejectsUnknownTensorCodec(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	var buf bytes.Buffer
	if err := WriteMessage(&buf, &Message{
		Type: MsgActivations, Step: 1, Tensor: tensor.Randn(rng, 1, 4),
	}); err != nil {
		t.Fatal(err)
	}
	frame := buf.Bytes()
	// The codec id byte follows the 12-byte header, the 4-byte anchor
	// count and the presence flag.
	frame[12+4+1] = 99
	crc := crc32.NewIEEE()
	crc.Write(frame[:len(frame)-4])
	binary.BigEndian.PutUint32(frame[len(frame)-4:], crc.Sum32())
	if _, err := ReadMessage(bytes.NewReader(frame)); err == nil {
		t.Fatal("unknown tensor codec accepted")
	}
}

// TestCodecRoundTripOnWire: every codec survives WriteMessage →
// ReadMessage with its id intact and its documented loss profile.
func TestCodecRoundTripOnWire(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	want := tensor.Randn(rng, 1, 8, 1, 2, 2)
	for _, id := range compress.IDs() {
		var buf bytes.Buffer
		if err := WriteMessage(&buf, &Message{Type: MsgActivations, Step: 2, Tensor: want, Codec: id}); err != nil {
			t.Fatalf("%v: %v", id, err)
		}
		got, err := ReadMessage(&buf)
		if err != nil {
			t.Fatalf("%v: %v", id, err)
		}
		if got.Codec != id {
			t.Fatalf("codec %v round-tripped as %v", id, got.Codec)
		}
		if id == compress.CodecRaw && tensor.MaxAbsDiff(got.Tensor, want) != 0 {
			t.Fatal("raw codec lossy on the wire")
		}
		if got.Tensor.Size() != want.Size() {
			t.Fatalf("%v: size %d != %d", id, got.Tensor.Size(), want.Size())
		}
	}
}
