package transport

import (
	"bytes"
	"errors"
	"fmt"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro/internal/store"
)

// crashBackend builds each Store flavour for the BS-crash drills: open
// creates the store, reopen models the replacement process opening the
// same durable state (nil for mem, whose state lives in the object).
type crashBackend struct {
	name   string
	open   func(t *testing.T, dir string) store.Store
	reopen func(t *testing.T, dir string) store.Store
}

func crashBackends() []crashBackend {
	openDir := func(t *testing.T, dir string) store.Store {
		t.Helper()
		d, err := store.OpenDir(dir, 16)
		if err != nil {
			t.Fatal(err)
		}
		return d
	}
	openJournal := func(t *testing.T, dir string) store.Store {
		t.Helper()
		j, err := store.OpenJournal(filepath.Join(dir, "store.journal"), store.JournalOptions{Retain: 16})
		if err != nil {
			t.Fatal(err)
		}
		return j
	}
	return []crashBackend{
		{name: "mem", open: func(t *testing.T, string2 string) store.Store { return store.NewMem(16) }},
		{name: "dir", open: openDir, reopen: openDir},
		{name: "journal", open: openJournal, reopen: openJournal},
	}
}

// crashPhase runs one complete UESession against a fresh BSServer bound
// to st, seeding the UE with a prior incarnation's resume token when
// prev is non-nil. It returns the session and the server (closed).
func crashPhase(t *testing.T, prov Provision, st store.Store, steps int, prev *UESession) (*UESession, *BSServer) {
	t.Helper()
	srv, err := NewBSServer(ServerConfig{
		MaxUE: 1, Steps: steps, EvalEvery: 10, ValAnchors: 16,
		Provision: prov, Store: st, CheckpointEvery: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	h := tinyHello(0)
	cfg, d, _, err := prov(h)
	if err != nil {
		t.Fatal(err)
	}
	us := &UESession{
		Hello: h, Cfg: cfg, Data: d,
		Backoff: Backoff{Base: time.Millisecond, Max: 5 * time.Millisecond},
		sleep:   func(time.Duration) {},
	}
	if prev != nil {
		us.ckpt, us.ckptStep, us.epoch = prev.ckpt, prev.ckptStep, prev.epoch
	}
	dialer := &pipeDialer{srv: srv}
	if err := us.Run(dialer.dial); err != nil {
		t.Fatalf("UESession.Run: %v", err)
	}
	dialer.wait()
	srv.Close()
	return us, srv
}

// TestCrashAdoptionResumeBitIdentical is the cold-start acceptance
// drill on every backend: a UE trains to step 10 against server A,
// server A dies, a fresh server B boots on the same store, adopts the
// retired session it never served live, honours the UE's resume token,
// and the finished run is bit-identical — UE half and BS half — to a
// run that was never interrupted.
func TestCrashAdoptionResumeBitIdentical(t *testing.T) {
	prov := cachedProvision()

	// The uninterrupted reference: 20 straight steps.
	cleanStore := store.NewMem(16)
	clean, _ := crashPhase(t, prov, cleanStore, 20, nil)
	cleanBS, err := cleanStore.GetCheckpoint("ue-0", 20)
	if err != nil {
		t.Fatal(err)
	}
	if len(clean.ckpt) == 0 || clean.ckptStep != 20 {
		t.Fatalf("clean run token at step %d", clean.ckptStep)
	}

	for _, b := range crashBackends() {
		t.Run(b.name, func(t *testing.T) {
			dir := t.TempDir()
			st := b.open(t, dir)

			// Server A serves the first 10 steps, the session detaches
			// cleanly (checkpoint@10 durable, retire record durable), and
			// the process "crashes": for durable backends the handle is
			// closed and the replacement reopens from disk.
			usA, _ := crashPhase(t, prov, st, 10, nil)
			if usA.ckptStep != 10 || usA.epoch != 1 {
				t.Fatalf("phase A token: step %d epoch %d", usA.ckptStep, usA.epoch)
			}
			if b.reopen != nil {
				if err := st.Close(); err != nil {
					t.Fatal(err)
				}
				st = b.reopen(t, dir)
			}
			defer st.Close()

			// Server B boots on the store and must already know the
			// session before any UE connects.
			srvB, err := NewBSServer(ServerConfig{
				MaxUE: 1, Steps: 20, EvalEvery: 10, ValAnchors: 16,
				Provision: prov, Store: st, CheckpointEvery: 5,
			})
			if err != nil {
				t.Fatal(err)
			}
			if got := srvB.Stats().AdoptedSessions; got != 1 {
				t.Fatalf("server B adopted %d sessions, want 1", got)
			}
			adopted, ok := srvB.SessionByID("ue-0")
			if !ok || adopted.State != SessionDetached || adopted.Steps != 10 || adopted.Epoch != 1 {
				t.Fatalf("adopted snapshot: ok=%v %+v", ok, adopted)
			}

			// The UE from the dead server resumes against B — a session B
			// never served live, across a boot epoch.
			usB := &UESession{
				Hello: tinyHello(0), Cfg: clean.Cfg, Data: clean.Data,
				Backoff: Backoff{Base: time.Millisecond, Max: 5 * time.Millisecond},
				sleep:   func(time.Duration) {},
			}
			usB.ckpt, usB.ckptStep, usB.epoch = usA.ckpt, usA.ckptStep, usA.epoch
			dialer := &pipeDialer{srv: srvB}
			if err := usB.Run(dialer.dial); err != nil {
				t.Fatalf("resume against adopting server: %v", err)
			}
			dialer.wait()
			srvB.Close()

			if usB.Resumes() != 1 {
				t.Fatalf("resumed %d times, want 1", usB.Resumes())
			}
			snaps := srvB.Sessions()
			last := snaps[len(snaps)-1]
			if last.ResumedFrom != 10 || last.Epoch != 2 || last.Steps != 20 {
				t.Fatalf("resumed incarnation: %+v", last)
			}

			// Invariant 7, across the crash: both halves bit-identical to
			// the uninterrupted run.
			if !bytes.Equal(usB.ckpt, clean.ckpt) {
				t.Fatal("UE half diverged from the uninterrupted run")
			}
			gotBS, err := st.GetCheckpoint("ue-0", 20)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(gotBS, cleanBS) {
				t.Fatal("BS half diverged from the uninterrupted run")
			}
		})
	}
}

// TestCrashResumeTokenCompactedAway: a UE presents a token for a
// checkpoint the journal has since compacted away; the BS refuses the
// resume as resume-specific and the UE retrains fresh instead of dying.
func TestCrashResumeTokenCompactedAway(t *testing.T) {
	prov := cachedProvision()
	dir := t.TempDir()
	j, err := store.OpenJournal(filepath.Join(dir, "store.journal"), store.JournalOptions{Retain: 16})
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()

	usA, _ := crashPhase(t, prov, j, 10, nil)
	if usA.ckptStep != 10 {
		t.Fatalf("phase A token at step %d", usA.ckptStep)
	}
	// Retention policy strikes between the boots: the checkpoint is
	// pruned and compaction rewrites the journal without its bytes.
	if err := j.DeleteCheckpoint("ue-0", 10); err != nil {
		t.Fatal(err)
	}
	if err := j.Compact(); err != nil {
		t.Fatal(err)
	}
	if _, err := j.GetCheckpoint("ue-0", 10); !store.IsNotFound(err) {
		t.Fatalf("checkpoint still present after compaction: %v", err)
	}

	usB, srvB := crashPhase(t, prov, j, 10, usA)
	if usB.Resumes() != 0 {
		t.Fatalf("resumed %d times from a compacted-away checkpoint", usB.Resumes())
	}
	if st := srvB.Stats(); st.RestoreErrors == 0 {
		t.Fatal("failed restore not counted")
	}
	snaps := srvB.Sessions()
	last := snaps[len(snaps)-1]
	if last.State != SessionDetached || last.Steps != 10 || last.ResumedFrom != 0 {
		t.Fatalf("fallback session snapshot: %+v", last)
	}
}

// TestCrashConcurrentCheckpointEvict hammers the checkpoint write path
// (every step) while the control plane evicts sessions out from under
// it — the -race drill for store writes vs. retirement persistence.
// Evicted UEs reconnect and resume; when the evictor stops, every
// session finishes, and the journal must reopen clean.
func TestCrashConcurrentCheckpointEvict(t *testing.T) {
	prov := cachedProvision()
	dir := t.TempDir()
	j, err := store.OpenJournal(filepath.Join(dir, "store.journal"), store.JournalOptions{Retain: 64})
	if err != nil {
		t.Fatal(err)
	}
	const nUE = 4
	srv, err := NewBSServer(ServerConfig{
		MaxUE: nUE, Steps: 30, EvalEvery: 15, ValAnchors: 8,
		Provision: prov, Store: j, CheckpointEvery: 1,
	})
	if err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	var evictors sync.WaitGroup
	evictors.Add(1)
	go func() {
		defer evictors.Done()
		for round := 0; round < 6; round++ {
			select {
			case <-stop:
				return
			default:
			}
			for i := 0; i < nUE; i++ {
				srv.Evict(fmt.Sprintf("ue-%d", i)) // error (not live) is fine
			}
			time.Sleep(2 * time.Millisecond)
		}
	}()

	var wg sync.WaitGroup
	errs := make(chan error, nUE)
	for i := 0; i < nUE; i++ {
		h := tinyHello(i)
		cfg, d, _, err := prov(h)
		if err != nil {
			t.Fatal(err)
		}
		us := &UESession{
			Hello: h, Cfg: cfg, Data: d,
			Backoff: Backoff{Base: time.Millisecond, Max: 2 * time.Millisecond, Retries: 20},
			sleep:   func(time.Duration) {},
		}
		dialer := &pipeDialer{srv: srv}
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := us.Run(dialer.dial); err != nil {
				errs <- err
			}
			dialer.wait()
		}()
	}
	wg.Wait()
	close(stop)
	evictors.Wait()
	close(errs)
	for err := range errs {
		t.Errorf("UE session under eviction churn: %v", err)
	}
	srv.Close()
	if srv.StoreDegraded() {
		t.Fatal("store degraded under concurrent checkpoint+evict")
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	r, err := store.OpenJournal(filepath.Join(dir, "store.journal"), store.JournalOptions{Retain: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if st := r.Stats(); st.Recoveries != 0 {
		t.Fatalf("journal needed recovery after clean shutdown: %+v", st)
	}
}

// failingStore wraps a Store with checkpoint writes that always fail —
// the disk-full twin of FaultFS, scoped to one method.
type failingStore struct {
	store.Store
	writes int
}

var errDiskFull = errors.New("injected: no space left on device")

func (f *failingStore) PutCheckpoint(id string, step int, blob []byte) error {
	f.writes++
	return errDiskFull
}

// TestCrashStoreDegradedServingContinues: when every checkpoint write
// fails, the server burns its retries once, flips to degraded, and the
// session still trains to completion — checkpointing is availability
// collateral, never a serving dependency.
func TestCrashStoreDegradedServingContinues(t *testing.T) {
	prov := cachedProvision()
	fs := &failingStore{Store: store.NewMem(8)}
	srv, err := NewBSServer(ServerConfig{
		MaxUE: 1, Steps: 10, EvalEvery: 5, ValAnchors: 8,
		Provision: prov, Store: fs, CheckpointEvery: 5,
		StoreRetries: 2, StoreRetryBackoff: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	h := tinyHello(0)
	cfg, d, _, err := prov(h)
	if err != nil {
		t.Fatal(err)
	}
	us := &UESession{
		Hello: h, Cfg: cfg, Data: d,
		Backoff: Backoff{Base: time.Millisecond},
		sleep:   func(time.Duration) {},
	}
	dialer := &pipeDialer{srv: srv}
	if err := us.Run(dialer.dial); err != nil {
		t.Fatalf("session under store failure: %v", err)
	}
	dialer.wait()
	srv.Close()

	if !srv.StoreDegraded() {
		t.Fatal("server not degraded after exhausted store retries")
	}
	st := srv.Stats()
	if !st.StoreDegraded || st.StoreWriteErrors == 0 {
		t.Fatalf("stats: %+v", st)
	}
	// The first due checkpoint burns the retry budget exactly once, then
	// checkpointing is disabled — no retry storm on later steps.
	if fs.writes != 3 {
		t.Fatalf("store saw %d write attempts, want 3 (one checkpoint, retried twice)", fs.writes)
	}
	// The UE was never told a checkpoint landed, so it holds no token.
	if us.LastCheckpointStep() != 0 {
		t.Fatalf("UE holds token for step %d after degraded writes", us.LastCheckpointStep())
	}
	snaps := srv.Sessions()
	last := snaps[len(snaps)-1]
	if last.State != SessionDetached || last.Steps != 10 {
		t.Fatalf("session under degraded store: %+v", last)
	}
}
