package transport

import (
	"errors"

	"repro/internal/metrics"
	"repro/internal/store"
)

// Bridge between the in-memory session layer and the durable store: a
// retiring SessionSnapshot projects onto a store.SessionRecord (the
// durable mirror write), and at boot the records found in an adopted
// store re-materialize as snapshots (cold-start adoption). The full
// metric series die with the process that collected them; what crosses
// the boundary is the terminal summary — enough for the control plane's
// reporting and for a fresh process to accept the session's resume
// token.

// recordFromSnapshot projects a terminal snapshot onto its durable form.
func recordFromSnapshot(snap SessionSnapshot) store.SessionRecord {
	rec := store.SessionRecord{
		ID:          snap.ID,
		Epoch:       snap.Epoch,
		Version:     snap.Version,
		Cause:       causeOf(snap.State, snap.cause),
		Steps:       uint32(snap.Steps),
		ResumedFrom: snap.ResumedFrom,
		Evals:       uint32(snap.Evals),
		Reached:     snap.Reached,
		LastLoss:    snap.LastLoss,
		LastRMSE:    snap.LastRMSE,
		BytesIn:     snap.BytesIn,
		BytesOut:    snap.BytesOut,
		Err:         snap.Err,
		Seed:        snap.Hello.Seed,
		Frames:      snap.Hello.Frames,
		Pool:        snap.Hello.Pool,
		Modality:    snap.Hello.Modality,
		Codec:       snap.Hello.Codec,
	}
	if snap.Metrics != nil {
		rec.Checkpoints = snap.Metrics.Checkpoints.Load()
		rec.Resumes = snap.Metrics.Resumes.Load()
	}
	return rec
}

// causeOf classifies a terminal state + cause into the store's EndCause,
// with the same precedence as endCounts.classify.
func causeOf(state SessionState, cause error) store.EndCause {
	switch {
	case errors.Is(cause, ErrAdminEvicted):
		return store.CauseAdmin
	case errors.Is(cause, ErrSuperseded) || state == SessionSuperseded:
		return store.CauseSuperseded
	case errors.Is(cause, ErrIdleTimeout):
		return store.CauseIdle
	case errors.Is(cause, ErrMigrated):
		return store.CauseMigrated
	case cause != nil || state == SessionFailed:
		return store.CauseFailed
	}
	return store.CauseDetached
}

// snapshotFromRecord re-materializes an adopted record as a retired
// snapshot: state and cause are reconstructed from the stored
// disposition (the original error value cannot cross a process
// boundary; the sentinel causes can), and the snapshot carries fresh
// metrics seeded with the stored counters so readers that poll
// Metrics.Checkpoints see the adopted history.
func snapshotFromRecord(rec store.SessionRecord) SessionSnapshot {
	snap := SessionSnapshot{
		ID: rec.ID,
		Hello: Hello{
			Version: rec.Version, SessionID: rec.ID, Seed: rec.Seed,
			Frames: rec.Frames, Pool: rec.Pool, Modality: rec.Modality,
			Codec: rec.Codec, Epoch: rec.Epoch,
		},
		Epoch:       rec.Epoch,
		Version:     rec.Version,
		Steps:       int(rec.Steps),
		ResumedFrom: rec.ResumedFrom,
		LastLoss:    rec.LastLoss,
		LastRMSE:    rec.LastRMSE,
		Evals:       int(rec.Evals),
		Reached:     rec.Reached,
		BytesIn:     rec.BytesIn,
		BytesOut:    rec.BytesOut,
		Err:         rec.Err,
		Metrics:     metrics.NewSessionMetrics(rec.ID),
	}
	snap.Metrics.Steps.Store(int64(rec.Steps))
	snap.Metrics.Checkpoints.Store(rec.Checkpoints)
	snap.Metrics.Resumes.Store(rec.Resumes)
	switch rec.Cause {
	case store.CauseDetached:
		snap.State = SessionDetached
	case store.CauseSuperseded:
		snap.State = SessionSuperseded
		snap.cause = ErrSuperseded
	case store.CauseIdle:
		snap.State = SessionFailed
		snap.cause = ErrIdleTimeout
	case store.CauseAdmin:
		snap.State = SessionFailed
		snap.cause = ErrAdminEvicted
	case store.CauseMigrated:
		snap.State = SessionFailed
		snap.cause = ErrMigrated
	default:
		snap.State = SessionFailed
		if rec.Err != "" {
			snap.cause = errors.New(rec.Err)
		}
	}
	if snap.cause != nil && snap.Err == "" {
		snap.Err = snap.cause.Error()
	}
	return snap
}

// countsFromAggregates seeds the session store's monotonic accumulators
// from an adopted store's lifetime aggregates.
func countsFromAggregates(a store.Aggregates) endCounts {
	return endCounts{
		detached:   a.Detached,
		superseded: a.Superseded,
		idle:       a.Idle,
		admin:      a.Admin,
		migrated:   a.Migrated,
		failed:     a.Failed,
	}
}
