package transport

import (
	"bytes"
	"io"
	"math/rand"
	"testing"

	"repro/internal/compress"
	"repro/internal/tensor"
)

// The zero-copy frame path: FrameWriter/FrameReader must round-trip
// byte-identically with the one-shot WriteMessage/ReadMessage pair, and
// steady-state serving must perform zero allocations per message in
// both directions — the property the CI bench-regression step pins via
// `mmsl bench -check`.

func frameTestMessage(codec compress.ID) *Message {
	rng := rand.New(rand.NewSource(5))
	return &Message{
		Type:    MsgActivations,
		Step:    42,
		Anchors: []int32{9, 11, 13, 15},
		Tensor:  tensor.Randn(rng, 1, 8, 1, 2, 2),
		Codec:   codec,
	}
}

func TestFrameWriterMatchesWriteMessage(t *testing.T) {
	for _, codec := range compress.IDs() {
		m := frameTestMessage(codec)
		var legacy bytes.Buffer
		if err := WriteMessage(&legacy, m); err != nil {
			t.Fatal(err)
		}
		var buffered bytes.Buffer
		fw := NewFrameWriter(&buffered)
		if err := fw.WriteMessage(m, ProtocolVersion); err != nil {
			t.Fatal(err)
		}
		fw.Release()
		if !bytes.Equal(legacy.Bytes(), buffered.Bytes()) {
			t.Fatalf("codec %v: FrameWriter bytes differ from WriteMessage", codec)
		}
		// And the reader inverts them through its reusable scratch.
		fr := NewFrameReader(&buffered)
		got, err := fr.ReadMessage()
		if err != nil {
			t.Fatal(err)
		}
		if got.Type != m.Type || got.Step != m.Step || got.Codec != codec {
			t.Fatalf("codec %v: header round-trip: %+v", codec, got)
		}
		if len(got.Anchors) != len(m.Anchors) {
			t.Fatalf("codec %v: anchors %v", codec, got.Anchors)
		}
		if !got.Tensor.SameShape(m.Tensor) {
			t.Fatalf("codec %v: tensor shape %v", codec, got.Tensor.Shape())
		}
		fr.Release()
	}
}

// replayReader replays the same byte slice forever, allocation-free.
type replayReader struct {
	data []byte
	off  int
}

func (r *replayReader) Read(p []byte) (int, error) {
	if r.off == len(r.data) {
		r.off = 0
	}
	n := copy(p, r.data[r.off:])
	r.off += n
	return n, nil
}

func TestFramePathZeroAllocSteadyState(t *testing.T) {
	for _, codec := range compress.IDs() {
		m := frameTestMessage(codec)

		fw := NewFrameWriter(io.Discard)
		defer fw.Release()
		if err := fw.WriteMessage(m, ProtocolVersion); err != nil { // warm the buffer
			t.Fatal(err)
		}
		if avg := testing.AllocsPerRun(50, func() {
			if err := fw.WriteMessage(m, ProtocolVersion); err != nil {
				t.Fatal(err)
			}
		}); avg != 0 {
			t.Errorf("codec %v: encode path allocates %.1f allocs/op, want 0", codec, avg)
		}

		var frame bytes.Buffer
		if err := WriteMessage(&frame, m); err != nil {
			t.Fatal(err)
		}
		fr := NewFrameReader(&replayReader{data: frame.Bytes()})
		defer fr.Release()
		if _, err := fr.ReadMessage(); err != nil { // warm scratch + buffer
			t.Fatal(err)
		}
		if avg := testing.AllocsPerRun(50, func() {
			if _, err := fr.ReadMessage(); err != nil {
				t.Fatal(err)
			}
		}); avg != 0 {
			t.Errorf("codec %v: decode path allocates %.1f allocs/op, want 0", codec, avg)
		}
	}
}

func TestFrameReaderFragmentedStream(t *testing.T) {
	m := frameTestMessage(compress.CodecRaw)
	var frame bytes.Buffer
	if err := WriteMessage(&frame, m); err != nil {
		t.Fatal(err)
	}
	fr := NewFrameReader(&oneByteReader{data: frame.Bytes()})
	defer fr.Release()
	got, err := fr.ReadMessage()
	if err != nil {
		t.Fatal(err)
	}
	if got.Step != m.Step || !got.Tensor.SameShape(m.Tensor) {
		t.Fatalf("fragmented round-trip: %+v", got)
	}
}

// oneByteReader delivers one byte per Read, the worst-case fragmentation.
type oneByteReader struct {
	data []byte
	off  int
}

func (r *oneByteReader) Read(p []byte) (int, error) {
	if r.off == len(r.data) {
		return 0, io.EOF
	}
	p[0] = r.data[r.off]
	r.off++
	return 1, nil
}
