package transport

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/split"
)

// Starvation guard for the coalescing dispatcher: a continuous burst of
// unshareable (unique-fingerprint) rounds must not delay a shareable
// group past the batch window. The dispatcher arms its window timer
// only when pending goes non-empty and every flush drains *all* pending
// groups, so no arrival pattern can push an already-pending round out
// indefinitely — this test pins that bound.

type nopCloser struct{}

func (nopCloser) Close() error { return nil }

// starvationPeer builds one RF-only BSPeer (no images: compute takes
// nil pooled input, so rounds can be driven without a UE connection).
func starvationPeer(t *testing.T, seed int64) *BSPeer {
	t.Helper()
	h := Hello{Seed: seed, Frames: 200, Pool: 4, Modality: uint8(split.RFOnly)}
	cfg, d, sp, err := tinySessionEnv(h)
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewBSPeer(cfg, d, sp, nil)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// submitRound pushes one compute round for the peer and returns its
// task; the caller waits on task.done.
func submitRound(h *computeHub, p *BSPeer) *roundTask {
	t := &roundTask{peer: p, done: make(chan struct{}, 1)}
	t.anchors = p.nextAnchors()
	t.key = batchKey{fp: p.fp, trained: p.trained}
	h.queue.Add(1)
	h.computeq <- t
	return t
}

func TestBatcherMixedFingerprintNoStarvation(t *testing.T) {
	const (
		window   = 25 * time.Millisecond
		batchMax = 4
		flooders = 6
	)
	store := newSessionStore(16)
	// Fake-admit enough live sessions that the early-dispatch target
	// stays at BatchMax: a non-full pending set must wait for the
	// window, the regime where a starvation bug would bite.
	for i := 0; i < 2*batchMax; i++ {
		if _, _, err := store.admit(Hello{SessionID: fmt.Sprintf("fake-%d", i)}, ProtocolVersion, nopCloser{}, 64); err != nil {
			t.Fatal(err)
		}
	}
	pol := func() Policy { return Policy{BatchWindow: window, BatchMax: batchMax} }
	hub := newComputeHub(pol, store)
	defer hub.stop()

	// Clone pair: same seed, same fingerprint, both trained 0 steps.
	cloneA := starvationPeer(t, 7)
	cloneB := starvationPeer(t, 7)
	if cloneA.fp != cloneB.fp {
		t.Fatal("clone peers disagree on fingerprint")
	}

	// Round 1, quiet hub: the pair must coalesce within one window and
	// share the computation.
	ta, tb := submitRound(hub, cloneA), submitRound(hub, cloneB)
	<-ta.done
	<-tb.done
	hub.queue.Add(-2)
	if ta.err != nil || tb.err != nil {
		t.Fatalf("clone round failed: %v / %v", ta.err, tb.err)
	}
	if hub.sharedRounds.Load() == 0 {
		t.Fatal("quiet-hub clone pair was not served by shared computation")
	}

	// Flood: unique-fingerprint peers submit back-to-back rounds. None
	// of them can ever share, and none of them may hold the clone
	// pair's next round hostage.
	stop := make(chan struct{})
	var flood sync.WaitGroup
	for i := 0; i < flooders; i++ {
		p := starvationPeer(t, int64(100+i))
		flood.Add(1)
		go func() {
			defer flood.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				ft := submitRound(hub, p)
				<-ft.done
				hub.queue.Add(-1)
			}
		}()
	}

	start := time.Now()
	ta, tb = submitRound(hub, cloneA), submitRound(hub, cloneB)
	<-ta.done
	<-tb.done
	hub.queue.Add(-2)
	elapsed := time.Since(start)
	close(stop)
	flood.Wait()

	if ta.err != nil || tb.err != nil {
		t.Fatalf("clone round under flood failed: %v / %v", ta.err, tb.err)
	}
	// The bound is deliberately loose (compute time, race-detector
	// overhead), but far below anything resembling starvation.
	if limit := 20 * window; elapsed > limit {
		t.Fatalf("shareable pair waited %v under mixed-fingerprint flood (limit %v)", elapsed, limit)
	}
	if cur := hub.queue.Load(); cur != 0 {
		t.Fatalf("queue gauge %d after drain, want 0", cur)
	}
}
