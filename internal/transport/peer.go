package transport

import (
	"errors"
	"fmt"
	"io"
	"math"
	"math/rand"

	"repro/internal/dataset"
	"repro/internal/nn"
	"repro/internal/opt"
	"repro/internal/split"
	"repro/internal/tensor"
)

// UEPeer is the camera-side endpoint. It owns the raw depth images and
// the CNN half of the model; it serves forward passes on request and
// applies its own optimiser to its own parameters when gradients arrive.
// Raw images never cross the connection.
type UEPeer struct {
	Model *split.UEModel
	Cfg   split.Config

	// Ver is the protocol version this peer stamps on its frames
	// (default ProtocolVersion); tests lower it to simulate old UEs.
	Ver uint8

	// OnCheckpoint, when set, is called for every MsgCheckpoint the BS
	// sends (protocol ≥ 3): the UE must persist its half's train state
	// at the given step so a later reconnect can resume from it. A
	// returned error aborts the session.
	OnCheckpoint func(step uint32) error

	data         *dataset.Dataset
	adam         *opt.Adam
	conn         io.ReadWriter
	shutdownStep uint32 // step field of the shutdown that ended Serve
}

// ShutdownStep reports the step field of the shutdown that ended a
// clean Serve: 0 means the session completed (checkpoints may be
// discarded), non-zero a resumable drain at that checkpointed step.
func (u *UEPeer) ShutdownStep() uint32 { return u.shutdownStep }

// NewUEPeer constructs the UE endpoint over an established connection.
func NewUEPeer(cfg split.Config, d *dataset.Dataset, conn io.ReadWriter) (*UEPeer, error) {
	if !cfg.Modality.UsesImages() {
		return nil, fmt.Errorf("transport: %v needs no UE peer", cfg.Modality)
	}
	if err := cfg.Validate(d); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	model := split.NewUEModel(rng, cfg, d)
	return &UEPeer{
		Model: model,
		Cfg:   cfg,
		Ver:   ProtocolVersion,
		data:  d,
		adam:  opt.NewAdam(model.Params(), cfg.LR, cfg.Beta1, cfg.Beta2),
		conn:  conn,
	}, nil
}

// SaveState writes the UE half's resumable train state (parameters +
// optimiser moments) labelled with the given training step.
func (u *UEPeer) SaveState(w io.Writer, step int) error {
	return split.SaveTrainState(w, u.Cfg.Fingerprint(), split.HalfUE, step, u.Model.Params(), u.adam)
}

// RestoreState loads a snapshot written by SaveState into this peer and
// returns the step it was taken at.
func (u *UEPeer) RestoreState(r io.Reader) (int, error) {
	return split.LoadTrainState(r, u.Cfg.Fingerprint(), split.HalfUE, u.Model.Params(), u.adam)
}

// imageBatch assembles the (B·L, 1, H, W) stack for the anchors.
func (u *UEPeer) imageBatch(anchors []int32) (*tensor.Tensor, error) {
	d, L := u.data, u.Cfg.SeqLen
	px := d.H * d.W
	out := tensor.New(len(anchors)*L, 1, d.H, d.W)
	for b, k := range anchors {
		if int(k) < L-1 || int(k) >= d.Len() {
			return nil, fmt.Errorf("transport: anchor %d outside usable range", k)
		}
		for t := 0; t < L; t++ {
			frame := int(k) - L + 1 + t
			copy(out.Data()[(b*L+t)*px:(b*L+t+1)*px], d.Image(frame))
		}
	}
	return out, nil
}

// Serve processes requests until a shutdown message or connection error.
// A clean shutdown returns nil.
func (u *UEPeer) Serve() error {
	for {
		msg, err := ReadMessage(u.conn)
		if err != nil {
			return fmt.Errorf("transport: UE read: %w", err)
		}
		switch msg.Type {
		case MsgShutdown:
			u.shutdownStep = msg.Step
			return nil

		case MsgCheckpoint:
			if u.OnCheckpoint != nil {
				if err := u.OnCheckpoint(msg.Step); err != nil {
					return fmt.Errorf("transport: UE checkpoint at step %d: %w", msg.Step, err)
				}
			}

		case MsgBatchRequest, MsgEvalRequest:
			batch, err := u.imageBatch(msg.Anchors)
			if err != nil {
				return err
			}
			act := u.Model.Forward(batch)
			reply := &Message{Type: MsgActivations, Step: msg.Step, Tensor: act, Codec: u.Cfg.Codec}
			if err := WriteMessageVersion(u.conn, reply, u.Ver); err != nil {
				return fmt.Errorf("transport: UE write: %w", err)
			}
			if msg.Type == MsgEvalRequest {
				continue // no backward pass for evaluation
			}
			grad, err := ReadMessage(u.conn)
			if err != nil {
				return fmt.Errorf("transport: UE read gradient: %w", err)
			}
			if grad.Type == MsgShutdown {
				u.shutdownStep = grad.Step
				return nil
			}
			if grad.Type != MsgCutGradient || grad.Tensor == nil {
				return fmt.Errorf("transport: UE expected CutGradient, got %v", grad.Type)
			}
			if grad.Step != msg.Step {
				return fmt.Errorf("transport: gradient step %d for request %d", grad.Step, msg.Step)
			}
			if grad.Codec != u.Cfg.Codec {
				return fmt.Errorf("transport: gradient used codec %v, session negotiated %v",
					grad.Codec, u.Cfg.Codec)
			}
			nn.ZeroGrads(u.Model.Params())
			u.Model.Backward(grad.Tensor)
			u.adam.Step()

		default:
			return fmt.Errorf("transport: UE unexpected message %v", msg.Type)
		}
	}
}

// BSPeer is the base-station endpoint. It owns the received powers, the
// labels, and the LSTM half; it orchestrates training by requesting
// forward passes from the UE.
type BSPeer struct {
	Model *split.BSModel
	Cfg   split.Config
	Norm  dataset.Normalizer

	// Ver is the protocol version this peer stamps on its frames
	// (default ProtocolVersion); the multi-UE server lowers it to the
	// session's negotiated version for old UEs.
	Ver uint8

	data    *dataset.Dataset
	adam    *opt.Adam
	conn    io.ReadWriter
	sampler *dataset.Sampler
	step    uint32
	trained int // training steps applied (restored across resume)
}

// NewBSPeer constructs the BS endpoint over an established connection.
func NewBSPeer(cfg split.Config, d *dataset.Dataset, sp *dataset.Split, conn io.ReadWriter) (*BSPeer, error) {
	if err := cfg.Validate(d); err != nil {
		return nil, err
	}
	// Match internal/split's construction order so distributed and
	// in-process training are comparable: the BS draws from the same seed
	// stream *after* the UE's layers, which NewModel achieves by building
	// UE first. Here the halves live in different processes, so the BS
	// replays the UE's draws by building a throwaway UE model.
	rng := rand.New(rand.NewSource(cfg.Seed))
	if cfg.Modality.UsesImages() {
		_ = split.NewUEModel(rng, cfg, d)
	}
	model := split.NewBSModel(rng, cfg, cfg.RNNInputDim(d))
	norm := dataset.FitNormalizer(d, sp.Train)
	return &BSPeer{
		Model:   model,
		Cfg:     cfg,
		Norm:    norm,
		Ver:     ProtocolVersion,
		data:    d,
		adam:    opt.NewAdam(model.Params(), cfg.LR, cfg.Beta1, cfg.Beta2),
		conn:    conn,
		sampler: dataset.NewSampler(sp.Train, rand.New(rand.NewSource(cfg.Seed+1000))),
	}, nil
}

// SaveState writes the BS half's resumable train state (parameters +
// optimiser moments) labelled with the given training step.
func (b *BSPeer) SaveState(w io.Writer, step int) error {
	return split.SaveTrainState(w, b.Cfg.Fingerprint(), split.HalfBS, step, b.Model.Params(), b.adam)
}

// RestoreState loads a snapshot written by SaveState into this freshly
// constructed peer and returns the step it was taken at. The anchor
// sampler is fast-forwarded past the restored steps' draws, so the
// resumed run consumes exactly the mini-batches the uninterrupted run
// would have — checkpoint/restore never changes the mathematics, only
// where the wall clock restarts.
func (b *BSPeer) RestoreState(r io.Reader) (int, error) {
	step, err := split.LoadTrainState(r, b.Cfg.Fingerprint(), split.HalfBS, b.Model.Params(), b.adam)
	if err != nil {
		return 0, err
	}
	for i := b.trained; i < step; i++ {
		b.sampler.Batch(b.Cfg.BatchSize)
	}
	b.trained = step
	return step, nil
}

// requestActivations asks the UE for a forward pass over the anchors.
func (b *BSPeer) requestActivations(t MsgType, anchors []int32) (*tensor.Tensor, error) {
	b.step++
	req := &Message{Type: t, Step: b.step, Anchors: anchors}
	if err := WriteMessageVersion(b.conn, req, b.Ver); err != nil {
		return nil, fmt.Errorf("transport: BS write: %w", err)
	}
	reply, err := ReadMessage(b.conn)
	if err != nil {
		return nil, fmt.Errorf("transport: BS read: %w", err)
	}
	if reply.Type != MsgActivations || reply.Tensor == nil {
		return nil, fmt.Errorf("transport: BS expected Activations, got %v", reply.Type)
	}
	if reply.Step != b.step {
		return nil, fmt.Errorf("transport: reply step %d for request %d", reply.Step, b.step)
	}
	if reply.Codec != b.Cfg.Codec {
		return nil, fmt.Errorf("transport: activations used codec %v, session negotiated %v",
			reply.Codec, b.Cfg.Codec)
	}
	return reply.Tensor, nil
}

// fuse builds the (B, L, D) LSTM input from received activations and the
// locally measured RF powers.
func (b *BSPeer) fuse(anchors []int32, pooled *tensor.Tensor) *tensor.Tensor {
	cfg, d := b.Cfg, b.data
	L := cfg.SeqLen
	featPx := cfg.FeaturePixels(d)
	dim := cfg.RNNInputDim(d)
	out := tensor.New(len(anchors), L, dim)
	for bi, k := range anchors {
		for t := 0; t < L; t++ {
			row := out.Data()[(bi*L+t)*dim : (bi*L+t+1)*dim]
			if pooled != nil {
				copy(row[:featPx], pooled.Data()[(bi*L+t)*featPx:(bi*L+t+1)*featPx])
			}
			if cfg.Modality.UsesRF() {
				row[dim-1] = b.Norm.Normalize(d.Powers[int(k)-L+1+t])
			}
		}
	}
	return out
}

func (b *BSPeer) targets(anchors []int32) *tensor.Tensor {
	out := tensor.New(len(anchors), 1)
	for i, k := range anchors {
		out.Data()[i] = b.Norm.Normalize(b.data.Powers[int(k)+b.Cfg.HorizonFrames])
	}
	return out
}

// extractImageGrad pulls the image-feature block out of the fused
// gradient as the cut-layer payload.
func (b *BSPeer) extractImageGrad(grad *tensor.Tensor, batch int) *tensor.Tensor {
	cfg, d := b.Cfg, b.data
	L := cfg.SeqLen
	featPx := cfg.FeaturePixels(d)
	dim := cfg.RNNInputDim(d)
	out := tensor.New(batch*L, 1, d.H/cfg.PoolH, d.W/cfg.PoolW)
	for bi := 0; bi < batch; bi++ {
		for t := 0; t < L; t++ {
			src := grad.Data()[(bi*L+t)*dim : (bi*L+t)*dim+featPx]
			copy(out.Data()[(bi*L+t)*featPx:(bi*L+t+1)*featPx], src)
		}
	}
	return out
}

// TrainStep runs one distributed SGD step and returns the mini-batch loss
// on the normalised scale.
func (b *BSPeer) TrainStep() (float64, error) {
	anchors := toInt32(b.sampler.Batch(b.Cfg.BatchSize))

	var pooled *tensor.Tensor
	if b.Cfg.Modality.UsesImages() {
		var err error
		pooled, err = b.requestActivations(MsgBatchRequest, anchors)
		if err != nil {
			return 0, err
		}
	}
	nn.ZeroGrads(b.Model.Params())
	pred := b.Model.Forward(b.fuse(anchors, pooled))
	loss, lossGrad := nn.MSE(pred, b.targets(anchors))
	fusedGrad := b.Model.Backward(lossGrad)
	b.adam.Step()

	if b.Cfg.Modality.UsesImages() {
		cut := b.extractImageGrad(fusedGrad, len(anchors))
		msg := &Message{Type: MsgCutGradient, Step: b.step, Tensor: cut, Codec: b.Cfg.Codec}
		if err := WriteMessageVersion(b.conn, msg, b.Ver); err != nil {
			return 0, fmt.Errorf("transport: BS write gradient: %w", err)
		}
	}
	b.trained++
	return loss, nil
}

// Evaluate computes the RMSE in dB over the given anchors without
// touching any parameters.
func (b *BSPeer) Evaluate(anchors []int) (float64, error) {
	var sumSq float64
	total := 0
	for start := 0; start < len(anchors); start += b.Cfg.BatchSize {
		end := start + b.Cfg.BatchSize
		if end > len(anchors) {
			end = len(anchors)
		}
		batch := toInt32(anchors[start:end])
		var pooled *tensor.Tensor
		if b.Cfg.Modality.UsesImages() {
			var err error
			pooled, err = b.requestActivations(MsgEvalRequest, batch)
			if err != nil {
				return 0, err
			}
		}
		pred := b.Model.Forward(b.fuse(batch, pooled))
		target := b.targets(batch)
		for i := range batch {
			diff := pred.Data()[i] - target.Data()[i]
			sumSq += diff * diff
		}
		total += len(batch)
	}
	return b.Norm.DenormalizeRMSE(sqrt(sumSq / float64(total))), nil
}

// Shutdown tells the UE the session is complete. Safe to call when the
// scheme has no UE peer (it is then a no-op on a nil-safe connection).
func (b *BSPeer) Shutdown() error { return b.ShutdownAt(0) }

// ShutdownAt tells the UE to stop serving. A non-zero step marks a
// resumable shutdown (graceful drain with a checkpoint at that step):
// the UE keeps its checkpointed half for a later resume. Step 0 means
// the session is complete and checkpoints may be discarded.
func (b *BSPeer) ShutdownAt(step uint32) error {
	return WriteMessageVersion(b.conn, &Message{Type: MsgShutdown, Step: step}, b.Ver)
}

func toInt32(xs []int) []int32 {
	out := make([]int32, len(xs))
	for i, x := range xs {
		out[i] = int32(x)
	}
	return out
}

func sqrt(v float64) float64 {
	if v < 0 {
		return 0
	}
	return math.Sqrt(v)
}

// IsClosedConn reports whether err looks like a normal connection
// teardown, for servers that want to treat peer disconnects as clean.
func IsClosedConn(err error) bool {
	return errors.Is(err, io.EOF) || errors.Is(err, io.ErrClosedPipe)
}
