package transport

import (
	"errors"
	"fmt"
	"io"
	"math"
	"math/rand"

	"repro/internal/dataset"
	"repro/internal/nn"
	"repro/internal/opt"
	"repro/internal/split"
	"repro/internal/tensor"
)

// UEPeer is the camera-side endpoint. It owns the raw depth images and
// the CNN half of the model; it serves forward passes on request and
// applies its own optimiser to its own parameters when gradients arrive.
// Raw images never cross the connection.
type UEPeer struct {
	Model *split.UEModel
	Cfg   split.Config

	// Ver is the protocol version this peer stamps on its frames
	// (default ProtocolVersion); tests lower it to simulate old UEs.
	Ver uint8

	// OnCheckpoint, when set, is called for every MsgCheckpoint the BS
	// sends (protocol ≥ 3): the UE must persist its half's train state
	// at the given step so a later reconnect can resume from it. A
	// returned error aborts the session.
	OnCheckpoint func(step uint32) error

	// OnRequest, when set, observes every request frame the BS sends —
	// batch, eval, checkpoint, shutdown — before the peer acts on it.
	// The fleet simulator hangs its think-time and churn triggers here:
	// sleeping models a straggler or a slow channel, and a returned
	// error makes Serve return without touching the connection (the
	// mid-round abandonment a wedged UE exhibits).
	OnRequest func(t MsgType, step uint32) error

	data         *dataset.Dataset
	adam         *opt.Adam
	conn         io.ReadWriter
	fr           *FrameReader
	fw           *FrameWriter
	arena        tensor.Arena // per-request batch-assembly scratch
	shutdownStep uint32       // step field of the shutdown that ended Serve
}

// ShutdownStep reports the step field of the shutdown that ended a
// clean Serve: 0 means the session completed (checkpoints may be
// discarded), non-zero a resumable drain at that checkpointed step.
func (u *UEPeer) ShutdownStep() uint32 { return u.shutdownStep }

// NewUEPeer constructs the UE endpoint over an established connection.
func NewUEPeer(cfg split.Config, d *dataset.Dataset, conn io.ReadWriter) (*UEPeer, error) {
	if !cfg.Modality.UsesImages() {
		return nil, fmt.Errorf("transport: %v needs no UE peer", cfg.Modality)
	}
	if err := cfg.Validate(d); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	model := split.NewUEModel(rng, cfg, d)
	u := &UEPeer{
		Model: model,
		Cfg:   cfg,
		Ver:   ProtocolVersion,
		data:  d,
		adam:  opt.NewAdam(model.Params(), cfg.LR, cfg.Beta1, cfg.Beta2),
		conn:  conn,
	}
	if conn != nil { // nil conn: an offline probe peer (checkpoint validation)
		u.fr = NewFrameReader(conn)
		u.fw = NewFrameWriter(conn)
	}
	return u, nil
}

// SaveState writes the UE half's resumable train state (parameters +
// optimiser moments) labelled with the given training step.
func (u *UEPeer) SaveState(w io.Writer, step int) error {
	return split.SaveTrainState(w, u.Cfg.Fingerprint(), split.HalfUE, step, u.Model.Params(), u.adam)
}

// RestoreState loads a snapshot written by SaveState into this peer and
// returns the step it was taken at.
func (u *UEPeer) RestoreState(r io.Reader) (int, error) {
	return split.LoadTrainState(r, u.Cfg.Fingerprint(), split.HalfUE, u.Model.Params(), u.adam)
}

// imageBatch assembles the (B·L, 1, H, W) stack for the anchors into
// the peer's arena (valid until the next request).
func (u *UEPeer) imageBatch(anchors []int32) (*tensor.Tensor, error) {
	d, L := u.data, u.Cfg.SeqLen
	px := d.H * d.W
	out := u.arena.GetUninit(len(anchors)*L, 1, d.H, d.W)
	for b, k := range anchors {
		if int(k) < L-1 || int(k) >= d.Len() {
			return nil, fmt.Errorf("transport: anchor %d outside usable range", k)
		}
		for t := 0; t < L; t++ {
			frame := int(k) - L + 1 + t
			copy(out.Data()[(b*L+t)*px:(b*L+t+1)*px], d.Image(frame))
		}
	}
	return out, nil
}

// Serve processes requests until a shutdown message or connection error.
// A clean shutdown returns nil. The request loop runs through the
// peer's FrameReader/FrameWriter, so steady-state serving performs zero
// allocations per message in either direction.
func (u *UEPeer) Serve() error {
	defer u.release()
	for {
		msg, err := u.fr.ReadMessage()
		if err != nil {
			return fmt.Errorf("transport: UE read: %w", err)
		}
		// msg (and its anchors/tensor) is reader-owned scratch: copy the
		// header fields needed after the next read.
		reqType, reqStep := msg.Type, msg.Step
		if u.OnRequest != nil {
			if err := u.OnRequest(reqType, reqStep); err != nil {
				return fmt.Errorf("transport: UE request hook at step %d: %w", reqStep, err)
			}
		}
		switch reqType {
		case MsgShutdown:
			u.shutdownStep = reqStep
			return nil

		case MsgCheckpoint:
			if u.OnCheckpoint != nil {
				if err := u.OnCheckpoint(reqStep); err != nil {
					return fmt.Errorf("transport: UE checkpoint at step %d: %w", reqStep, err)
				}
			}

		case MsgBatchRequest, MsgEvalRequest:
			u.arena.Reset()
			batch, err := u.imageBatch(msg.Anchors)
			if err != nil {
				return err
			}
			act := u.Model.Forward(batch)
			reply := &Message{Type: MsgActivations, Step: reqStep, Tensor: act, Codec: u.Cfg.Codec}
			if err := u.fw.WriteMessage(reply, u.Ver); err != nil {
				return fmt.Errorf("transport: UE write: %w", err)
			}
			if reqType == MsgEvalRequest {
				continue // no backward pass for evaluation
			}
			grad, err := u.fr.ReadMessage()
			if err != nil {
				return fmt.Errorf("transport: UE read gradient: %w", err)
			}
			if grad.Type == MsgShutdown {
				u.shutdownStep = grad.Step
				return nil
			}
			if grad.Type != MsgCutGradient || grad.Tensor == nil {
				return fmt.Errorf("transport: UE expected CutGradient, got %v", grad.Type)
			}
			if grad.Step != reqStep {
				return fmt.Errorf("transport: gradient step %d for request %d", grad.Step, reqStep)
			}
			if grad.Codec != u.Cfg.Codec {
				return fmt.Errorf("transport: gradient used codec %v, session negotiated %v",
					grad.Codec, u.Cfg.Codec)
			}
			nn.ZeroGrads(u.Model.Params())
			u.Model.Backward(grad.Tensor)
			u.adam.Step()

		default:
			return fmt.Errorf("transport: UE unexpected message %v", reqType)
		}
	}
}

// release returns the peer's pooled frame buffers and arena storage; the
// peer's protocol methods must not be used afterwards.
func (u *UEPeer) release() {
	if u.fr != nil {
		u.fr.Release()
	}
	if u.fw != nil {
		u.fw.Release()
	}
	u.arena.Release()
}

// BSPeer is the base-station endpoint. It owns the received powers, the
// labels, and the LSTM half; it orchestrates training by requesting
// forward passes from the UE.
type BSPeer struct {
	Model *split.BSModel
	Cfg   split.Config
	Norm  dataset.Normalizer

	// Ver is the protocol version this peer stamps on its frames
	// (default ProtocolVersion); the multi-UE server lowers it to the
	// session's negotiated version for old UEs.
	Ver uint8

	data    *dataset.Dataset
	adam    *opt.Adam
	conn    io.ReadWriter
	fr      *FrameReader
	fw      *FrameWriter
	sampler *dataset.Sampler
	step    uint32
	trained int // training steps applied (restored across resume)

	// Serving-path scratch: the arena holds the per-round batch-assembly
	// tensors (fused sequence, targets, cut gradient), reset at the top
	// of every computeStep; the slices are reused across rounds. None of
	// this changes any computed value — see the equivalence suite.
	arena      tensor.Arena
	anchorsInt []int
	anchors32  []int32
	lossGrad   *tensor.Tensor
	fp         uint64 // cached Cfg.Fingerprint()

	// lastFused/lastTargets retain the most recent computeStep's network
	// inputs (arena-owned, valid until the next computeStep). The
	// cross-session batcher compares them bitwise against a candidate
	// clone session's to prove that sharing this step's computation is
	// exact rather than assumed.
	lastFused   *tensor.Tensor
	lastTargets *tensor.Tensor

	// task is the peer's reusable pipeline round (see batcher.go), lazily
	// created by computeHub.step.
	task *roundTask
}

// NewBSPeer constructs the BS endpoint over an established connection.
func NewBSPeer(cfg split.Config, d *dataset.Dataset, sp *dataset.Split, conn io.ReadWriter) (*BSPeer, error) {
	if err := cfg.Validate(d); err != nil {
		return nil, err
	}
	// Match internal/split's construction order so distributed and
	// in-process training are comparable: the BS draws from the same seed
	// stream *after* the UE's layers, which NewModel achieves by building
	// UE first. Here the halves live in different processes, so the BS
	// replays the UE's draws by building a throwaway UE model.
	rng := rand.New(rand.NewSource(cfg.Seed))
	if cfg.Modality.UsesImages() {
		_ = split.NewUEModel(rng, cfg, d)
	}
	model := split.NewBSModel(rng, cfg, cfg.RNNInputDim(d))
	norm := dataset.FitNormalizer(d, sp.Train)
	b := &BSPeer{
		Model:   model,
		Cfg:     cfg,
		Norm:    norm,
		Ver:     ProtocolVersion,
		data:    d,
		adam:    opt.NewAdam(model.Params(), cfg.LR, cfg.Beta1, cfg.Beta2),
		conn:    conn,
		sampler: dataset.NewSampler(sp.Train, rand.New(rand.NewSource(cfg.Seed+1000))),
		fp:      cfg.Fingerprint(),
	}
	if conn != nil {
		b.fr = NewFrameReader(conn)
		b.fw = NewFrameWriter(conn)
	}
	return b, nil
}

// release returns the peer's pooled frame buffers and arena storage; the
// peer's protocol methods must not be used afterwards.
func (b *BSPeer) release() {
	if b.fr != nil {
		b.fr.Release()
	}
	if b.fw != nil {
		b.fw.Release()
	}
	b.lastFused, b.lastTargets, b.lossGrad = nil, nil, nil
	b.arena.Release()
}

// SaveState writes the BS half's resumable train state (parameters +
// optimiser moments) labelled with the given training step.
func (b *BSPeer) SaveState(w io.Writer, step int) error {
	return split.SaveTrainState(w, b.Cfg.Fingerprint(), split.HalfBS, step, b.Model.Params(), b.adam)
}

// RestoreState loads a snapshot written by SaveState into this freshly
// constructed peer and returns the step it was taken at. The anchor
// sampler is fast-forwarded past the restored steps' draws, so the
// resumed run consumes exactly the mini-batches the uninterrupted run
// would have — checkpoint/restore never changes the mathematics, only
// where the wall clock restarts.
func (b *BSPeer) RestoreState(r io.Reader) (int, error) {
	step, err := split.LoadTrainState(r, b.Cfg.Fingerprint(), split.HalfBS, b.Model.Params(), b.adam)
	if err != nil {
		return 0, err
	}
	for i := b.trained; i < step; i++ {
		b.sampler.Batch(b.Cfg.BatchSize)
	}
	b.trained = step
	return step, nil
}

// sendRequest writes a forward-pass request for the anchors, advancing
// the step correlation id.
func (b *BSPeer) sendRequest(t MsgType, anchors []int32) error {
	b.step++
	req := &Message{Type: t, Step: b.step, Anchors: anchors}
	if err := b.fw.WriteMessage(req, b.Ver); err != nil {
		return fmt.Errorf("transport: BS write: %w", err)
	}
	return nil
}

// checkActivations validates a reply against the in-flight request.
func (b *BSPeer) checkActivations(reply *Message) (*tensor.Tensor, error) {
	if reply.Type != MsgActivations || reply.Tensor == nil {
		return nil, fmt.Errorf("transport: BS expected Activations, got %v", reply.Type)
	}
	if reply.Step != b.step {
		return nil, fmt.Errorf("transport: reply step %d for request %d", reply.Step, b.step)
	}
	if reply.Codec != b.Cfg.Codec {
		return nil, fmt.Errorf("transport: activations used codec %v, session negotiated %v",
			reply.Codec, b.Cfg.Codec)
	}
	return reply.Tensor, nil
}

// requestActivations asks the UE for a forward pass over the anchors.
// The returned tensor is reader-owned scratch, valid until the next
// read on this peer.
func (b *BSPeer) requestActivations(t MsgType, anchors []int32) (*tensor.Tensor, error) {
	if err := b.sendRequest(t, anchors); err != nil {
		return nil, err
	}
	reply, err := b.fr.ReadMessage()
	if err != nil {
		return nil, fmt.Errorf("transport: BS read: %w", err)
	}
	return b.checkActivations(reply)
}

// fuse builds the (B, L, D) LSTM input from received activations and the
// locally measured RF powers into the peer's arena.
func (b *BSPeer) fuse(anchors []int32, pooled *tensor.Tensor) *tensor.Tensor {
	cfg, d := b.Cfg, b.data
	L := cfg.SeqLen
	featPx := cfg.FeaturePixels(d)
	dim := cfg.RNNInputDim(d)
	out := b.arena.GetUninit(len(anchors), L, dim)
	for bi, k := range anchors {
		for t := 0; t < L; t++ {
			row := out.Data()[(bi*L+t)*dim : (bi*L+t+1)*dim]
			if pooled != nil {
				copy(row[:featPx], pooled.Data()[(bi*L+t)*featPx:(bi*L+t+1)*featPx])
			}
			if cfg.Modality.UsesRF() {
				row[dim-1] = b.Norm.Normalize(d.Powers[int(k)-L+1+t])
			}
		}
	}
	return out
}

func (b *BSPeer) targets(anchors []int32) *tensor.Tensor {
	out := b.arena.GetUninit(len(anchors), 1)
	for i, k := range anchors {
		out.Data()[i] = b.Norm.Normalize(b.data.Powers[int(k)+b.Cfg.HorizonFrames])
	}
	return out
}

// extractImageGrad pulls the image-feature block out of the fused
// gradient as the cut-layer payload (arena-owned, valid until the next
// computeStep).
func (b *BSPeer) extractImageGrad(grad *tensor.Tensor, batch int) *tensor.Tensor {
	cfg, d := b.Cfg, b.data
	L := cfg.SeqLen
	featPx := cfg.FeaturePixels(d)
	dim := cfg.RNNInputDim(d)
	out := b.arena.GetUninit(batch*L, 1, d.H/cfg.PoolH, d.W/cfg.PoolW)
	for bi := 0; bi < batch; bi++ {
		for t := 0; t < L; t++ {
			src := grad.Data()[(bi*L+t)*dim : (bi*L+t)*dim+featPx]
			copy(out.Data()[(bi*L+t)*featPx:(bi*L+t+1)*featPx], src)
		}
	}
	return out
}

// nextAnchors draws the next mini-batch of anchors into the peer's
// reusable int32 slice.
func (b *BSPeer) nextAnchors() []int32 {
	if cap(b.anchorsInt) < b.Cfg.BatchSize {
		b.anchorsInt = make([]int, b.Cfg.BatchSize)
		b.anchors32 = make([]int32, b.Cfg.BatchSize)
	}
	b.anchorsInt = b.anchorsInt[:b.Cfg.BatchSize]
	b.anchors32 = b.anchors32[:b.Cfg.BatchSize]
	b.sampler.Fill(b.anchorsInt)
	for i, x := range b.anchorsInt {
		b.anchors32[i] = int32(x)
	}
	return b.anchors32
}

// computeStep runs the local half of one training step — fuse, forward,
// loss, backward, optimiser update, cut-gradient extraction — with no
// I/O. It is the unit of work the cross-session batcher schedules; the
// legacy serial path calls it inline between the activation read and
// the gradient write, so both paths run byte-for-byte the same
// mathematics. The returned cut gradient (nil for RF-only schemes) is
// arena-owned and valid until the next computeStep.
func (b *BSPeer) computeStep(anchors []int32, pooled *tensor.Tensor) (loss float64, cut *tensor.Tensor) {
	b.arena.Reset()
	nn.ZeroGrads(b.Model.Params())
	fused := b.fuse(anchors, pooled)
	pred := b.Model.Forward(fused)
	targets := b.targets(anchors)
	b.lossGrad = tensor.EnsureShape(b.lossGrad, pred.Shape()...)
	loss = nn.MSEInto(b.lossGrad, pred, targets)
	fusedGrad := b.Model.Backward(b.lossGrad)
	b.adam.Step()
	if b.Cfg.Modality.UsesImages() {
		cut = b.extractImageGrad(fusedGrad, len(anchors))
	}
	b.lastFused, b.lastTargets = fused, targets
	b.trained++
	return loss, cut
}

// sendCutGradient ships the cut-layer gradient for the in-flight step.
func (b *BSPeer) sendCutGradient(cut *tensor.Tensor) error {
	msg := &Message{Type: MsgCutGradient, Step: b.step, Tensor: cut, Codec: b.Cfg.Codec}
	if err := b.fw.WriteMessage(msg, b.Ver); err != nil {
		return fmt.Errorf("transport: BS write gradient: %w", err)
	}
	return nil
}

// TrainStep runs one distributed SGD step and returns the mini-batch loss
// on the normalised scale.
func (b *BSPeer) TrainStep() (float64, error) {
	anchors := b.nextAnchors()

	var pooled *tensor.Tensor
	if b.Cfg.Modality.UsesImages() {
		var err error
		pooled, err = b.requestActivations(MsgBatchRequest, anchors)
		if err != nil {
			return 0, err
		}
	}
	loss, cut := b.computeStep(anchors, pooled)
	if cut != nil {
		if err := b.sendCutGradient(cut); err != nil {
			return 0, err
		}
	}
	return loss, nil
}

// Evaluate computes the RMSE in dB over the given anchors without
// touching any parameters.
func (b *BSPeer) Evaluate(anchors []int) (float64, error) {
	var sumSq float64
	total := 0
	for start := 0; start < len(anchors); start += b.Cfg.BatchSize {
		end := start + b.Cfg.BatchSize
		if end > len(anchors) {
			end = len(anchors)
		}
		batch := toInt32(anchors[start:end])
		var pooled *tensor.Tensor
		if b.Cfg.Modality.UsesImages() {
			var err error
			pooled, err = b.requestActivations(MsgEvalRequest, batch)
			if err != nil {
				return 0, err
			}
		}
		b.arena.Reset()
		b.lastFused, b.lastTargets = nil, nil
		pred := b.Model.Forward(b.fuse(batch, pooled))
		target := b.targets(batch)
		for i := range batch {
			diff := pred.Data()[i] - target.Data()[i]
			sumSq += diff * diff
		}
		total += len(batch)
	}
	return b.Norm.DenormalizeRMSE(sqrt(sumSq / float64(total))), nil
}

// Shutdown tells the UE the session is complete. Safe to call when the
// scheme has no UE peer (it is then a no-op on a nil-safe connection).
func (b *BSPeer) Shutdown() error { return b.ShutdownAt(0) }

// ShutdownAt tells the UE to stop serving. A non-zero step marks a
// resumable shutdown (graceful drain with a checkpoint at that step):
// the UE keeps its checkpointed half for a later resume. Step 0 means
// the session is complete and checkpoints may be discarded.
func (b *BSPeer) ShutdownAt(step uint32) error {
	return b.writeControl(&Message{Type: MsgShutdown, Step: step})
}

// writeControl sends a control frame through the peer's writer in its
// negotiated dialect — also the path the server uses for MsgCheckpoint,
// so control frames never interleave with a staged data frame.
func (b *BSPeer) writeControl(m *Message) error {
	return b.fw.WriteMessage(m, b.Ver)
}

func toInt32(xs []int) []int32 {
	out := make([]int32, len(xs))
	for i, x := range xs {
		out[i] = int32(x)
	}
	return out
}

func sqrt(v float64) float64 {
	if v < 0 {
		return 0
	}
	return math.Sqrt(v)
}

// IsClosedConn reports whether err looks like a normal connection
// teardown, for servers that want to treat peer disconnects as clean.
func IsClosedConn(err error) bool {
	return errors.Is(err, io.EOF) || errors.Is(err, io.ErrClosedPipe)
}
