package transport

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"math/rand"
	"net"
	"testing"
	"testing/quick"

	"repro/internal/dataset"
	"repro/internal/split"
	"repro/internal/tensor"
)

func TestMessageRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	msgs := []*Message{
		{Type: MsgShutdown},
		{Type: MsgBatchRequest, Step: 7, Anchors: []int32{3, 5, 8, 13}},
		{Type: MsgActivations, Step: 9, Tensor: tensor.Randn(rng, 1, 4, 1, 2, 2)},
		{Type: MsgCutGradient, Step: 9, Anchors: []int32{1}, Tensor: tensor.Randn(rng, 1, 2, 2)},
	}
	for _, m := range msgs {
		var buf bytes.Buffer
		if err := WriteMessage(&buf, m); err != nil {
			t.Fatal(err)
		}
		got, err := ReadMessage(&buf)
		if err != nil {
			t.Fatalf("%v: %v", m.Type, err)
		}
		if got.Type != m.Type || got.Step != m.Step {
			t.Fatalf("header mismatch: %+v vs %+v", got, m)
		}
		if len(got.Anchors) != len(m.Anchors) {
			t.Fatalf("anchors %v vs %v", got.Anchors, m.Anchors)
		}
		for i := range m.Anchors {
			if got.Anchors[i] != m.Anchors[i] {
				t.Fatalf("anchor %d mismatch", i)
			}
		}
		if (got.Tensor == nil) != (m.Tensor == nil) {
			t.Fatal("tensor presence mismatch")
		}
		if m.Tensor != nil && tensor.MaxAbsDiff(got.Tensor, m.Tensor) != 0 {
			t.Fatal("tensor not lossless through protocol")
		}
	}
}

func TestMessageRoundTripProperty(t *testing.T) {
	f := func(step uint32, anchors []int32, vals []float64) bool {
		if len(anchors) > 1000 {
			anchors = anchors[:1000]
		}
		m := &Message{Type: MsgBatchRequest, Step: step, Anchors: anchors}
		if len(vals) > 0 {
			for i := range vals {
				if vals[i] != vals[i] { // NaN breaks equality comparison only
					vals[i] = 0
				}
			}
			m.Tensor = tensor.FromSlice(vals, len(vals))
		}
		var buf bytes.Buffer
		if err := WriteMessage(&buf, m); err != nil {
			return false
		}
		got, err := ReadMessage(&buf)
		if err != nil || got.Step != step || len(got.Anchors) != len(anchors) {
			return false
		}
		if m.Tensor != nil && tensor.MaxAbsDiff(got.Tensor, m.Tensor) != 0 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// TestHelloRoundTrip covers the session handshake messages end to end,
// including the empty-string and rejection-ack cases.
func TestHelloRoundTrip(t *testing.T) {
	hellos := []*Hello{
		{Version: ProtocolVersion, SessionID: "ue-7", Seed: 42, Frames: 2400,
			Pool: 40, Modality: 2, ConfigFP: 0xFEEDFACECAFEBEEF, TargetRMSEdB: 2.7},
		{Version: ProtocolVersion, SessionID: "a", Seed: -1},
		{Version: ProtocolVersion, SessionID: "ue-7", Err: "server full (8/8 UEs)"},
		{},
	}
	types := []MsgType{MsgSessionHello, MsgSessionAck}
	for i, h := range hellos {
		m := &Message{Type: types[i%2], Hello: h}
		var buf bytes.Buffer
		if err := WriteMessage(&buf, m); err != nil {
			t.Fatal(err)
		}
		got, err := ReadMessage(&buf)
		if err != nil {
			t.Fatalf("hello %d: %v", i, err)
		}
		if got.Type != m.Type || got.Hello == nil {
			t.Fatalf("hello %d: decoded %+v", i, got)
		}
		if *got.Hello != *h {
			t.Fatalf("hello %d: %+v round-tripped to %+v", i, h, got.Hello)
		}
	}
}

func TestHelloRejectsOversizedStrings(t *testing.T) {
	long := make([]byte, 300)
	for i := range long {
		long[i] = 'x'
	}
	m := &Message{Type: MsgSessionHello, Hello: &Hello{SessionID: string(long)}}
	var buf bytes.Buffer
	if err := WriteMessage(&buf, m); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("oversized session id: err = %v, want ErrBadFrame", err)
	}
}

// TestReadRejectsNewerFrameVersion re-stamps a valid frame with a future
// protocol version (fixing up the CRC) and expects rejection.
func TestReadRejectsNewerFrameVersion(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteMessage(&buf, &Message{Type: MsgShutdown}); err != nil {
		t.Fatal(err)
	}
	frame := buf.Bytes()
	frame[3] = ProtocolVersion + 1
	crc := crc32.NewIEEE()
	crc.Write(frame[:len(frame)-4])
	binary.BigEndian.PutUint32(frame[len(frame)-4:], crc.Sum32())
	if _, err := ReadMessage(bytes.NewReader(frame)); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("future version: err = %v, want ErrBadFrame", err)
	}
}

// TestLegacyFrameStillDecodes: a version-0 frame (reserved byte zero, no
// hello section) must remain readable for mixed-version deployments.
func TestLegacyFrameStillDecodes(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteMessage(&buf, &Message{Type: MsgBatchRequest, Step: 3, Anchors: []int32{7}}); err != nil {
		t.Fatal(err)
	}
	frame := buf.Bytes()
	frame[3] = 0
	crc := crc32.NewIEEE()
	crc.Write(frame[:len(frame)-4])
	binary.BigEndian.PutUint32(frame[len(frame)-4:], crc.Sum32())
	got, err := ReadMessage(bytes.NewReader(frame))
	if err != nil {
		t.Fatal(err)
	}
	if got.Type != MsgBatchRequest || got.Step != 3 || got.Hello != nil {
		t.Fatalf("legacy frame decoded to %+v", got)
	}
}

func TestReadRejectsCorruption(t *testing.T) {
	m := &Message{Type: MsgBatchRequest, Step: 1, Anchors: []int32{1, 2}}
	var buf bytes.Buffer
	if err := WriteMessage(&buf, m); err != nil {
		t.Fatal(err)
	}
	pristine := append([]byte(nil), buf.Bytes()...)

	// Flip a payload byte: CRC must catch it.
	corrupt := append([]byte(nil), pristine...)
	corrupt[14] ^= 0xFF
	if _, err := ReadMessage(bytes.NewReader(corrupt)); !errors.Is(err, ErrChecksum) {
		t.Fatalf("flipped byte: err = %v, want ErrChecksum", err)
	}

	// Break the magic.
	corrupt = append([]byte(nil), pristine...)
	corrupt[0] = 0
	if _, err := ReadMessage(bytes.NewReader(corrupt)); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("bad magic: err = %v, want ErrBadFrame", err)
	}

	// Truncate.
	if _, err := ReadMessage(bytes.NewReader(pristine[:len(pristine)-2])); err == nil {
		t.Fatal("truncated frame accepted")
	}

	// Absurd length field.
	corrupt = append([]byte(nil), pristine...)
	corrupt[8], corrupt[9], corrupt[10], corrupt[11] = 0xFF, 0xFF, 0xFF, 0xFF
	if _, err := ReadMessage(bytes.NewReader(corrupt)); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("giant length: err = %v, want ErrBadFrame", err)
	}
}

// tinyDataset mirrors the split package's test helper.
func tinyDataset(t *testing.T, frames int) *dataset.Dataset {
	t.Helper()
	cfg := dataset.DefaultGenConfig()
	cfg.NumFrames = frames
	cfg.Seed = 99
	cfg.Scene.ImageH, cfg.Scene.ImageW = 8, 8
	cfg.Scene.FocalPixels = 5
	d, err := dataset.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func tinyConfig(m split.Modality, pool int) split.Config {
	cfg := split.DefaultConfig(m, pool)
	cfg.SeqLen = 2
	cfg.HorizonFrames = 2
	cfg.BatchSize = 4
	cfg.HiddenSize = 6
	return cfg
}

// runDistributed trains a UE/BS pair over the given connection-like pair
// for n steps and returns the peers.
func runDistributed(t *testing.T, cfg split.Config, d *dataset.Dataset, sp *dataset.Split, n int) (*UEPeer, *BSPeer) {
	t.Helper()
	ueConn, bsConn := net.Pipe()

	ue, err := NewUEPeer(cfg, d, ueConn)
	if err != nil {
		t.Fatal(err)
	}
	bs, err := NewBSPeer(cfg, d, sp, bsConn)
	if err != nil {
		t.Fatal(err)
	}

	serveErr := make(chan error, 1)
	go func() { serveErr <- ue.Serve() }()

	for i := 0; i < n; i++ {
		if _, err := bs.TrainStep(); err != nil {
			t.Fatal(err)
		}
	}
	if err := bs.Shutdown(); err != nil {
		t.Fatal(err)
	}
	if err := <-serveErr; err != nil {
		t.Fatalf("UE serve: %v", err)
	}
	ueConn.Close()
	bsConn.Close()
	return ue, bs
}

func TestDistributedTrainingRuns(t *testing.T) {
	d := tinyDataset(t, 120)
	cfg := tinyConfig(split.ImageRF, 4)
	sp, err := dataset.NewSplit(d, cfg.SeqLen, cfg.HorizonFrames, 80)
	if err != nil {
		t.Fatal(err)
	}
	runDistributed(t, cfg, d, sp, 10)
}

// TestDistributedMatchesInProcess is invariant 2 of DESIGN.md: training
// over the socket protocol must produce bit-identical parameters to the
// in-process split trainer over an ideal link.
func TestDistributedMatchesInProcess(t *testing.T) {
	d := tinyDataset(t, 150)
	cfg := tinyConfig(split.ImageRF, 4)
	sp, err := dataset.NewSplit(d, cfg.SeqLen, cfg.HorizonFrames, 100)
	if err != nil {
		t.Fatal(err)
	}
	const steps = 12

	// In-process reference.
	norm := dataset.FitNormalizer(d, sp.Train)
	ref, err := split.NewModel(cfg, d, norm)
	if err != nil {
		t.Fatal(err)
	}
	tr := split.NewTrainer(ref, d, sp, split.IdealLink{})
	for i := 0; i < steps; i++ {
		if _, err := tr.Step(); err != nil {
			t.Fatal(err)
		}
	}

	// Distributed run.
	ue, bs := runDistributed(t, cfg, d, sp, steps)

	refParams := ref.Params()
	gotParams := append(ue.Model.Params(), bs.Model.Params()...)
	if len(refParams) != len(gotParams) {
		t.Fatalf("parameter count %d vs %d", len(gotParams), len(refParams))
	}
	for i := range refParams {
		if tensor.MaxAbsDiff(refParams[i].Value, gotParams[i].Value) != 0 {
			t.Fatalf("parameter %d (%s) diverged between distributed and in-process",
				i, refParams[i].Name)
		}
	}
}

func TestDistributedEvaluate(t *testing.T) {
	d := tinyDataset(t, 150)
	cfg := tinyConfig(split.ImageRF, 4)
	sp, err := dataset.NewSplit(d, cfg.SeqLen, cfg.HorizonFrames, 100)
	if err != nil {
		t.Fatal(err)
	}
	ueConn, bsConn := net.Pipe()
	ue, err := NewUEPeer(cfg, d, ueConn)
	if err != nil {
		t.Fatal(err)
	}
	bs, err := NewBSPeer(cfg, d, sp, bsConn)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- ue.Serve() }()

	rmse, err := bs.Evaluate(sp.Val[:20])
	if err != nil {
		t.Fatal(err)
	}
	if rmse <= 0 || rmse > 100 {
		t.Fatalf("evaluate RMSE = %g dB", rmse)
	}
	if err := bs.Shutdown(); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

func TestDistributedOverTCP(t *testing.T) {
	d := tinyDataset(t, 120)
	cfg := tinyConfig(split.ImageRF, 4)
	sp, err := dataset.NewSplit(d, cfg.SeqLen, cfg.HorizonFrames, 80)
	if err != nil {
		t.Fatal(err)
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()

	serveErr := make(chan error, 1)
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			serveErr <- err
			return
		}
		defer conn.Close()
		ue, err := NewUEPeer(cfg, d, conn)
		if err != nil {
			serveErr <- err
			return
		}
		serveErr <- ue.Serve()
	}()

	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	bs, err := NewBSPeer(cfg, d, sp, conn)
	if err != nil {
		t.Fatal(err)
	}
	var lastLoss float64
	for i := 0; i < 8; i++ {
		if lastLoss, err = bs.TrainStep(); err != nil {
			t.Fatal(err)
		}
	}
	if lastLoss <= 0 {
		t.Fatalf("loss = %g", lastLoss)
	}
	if err := bs.Shutdown(); err != nil {
		t.Fatal(err)
	}
	if err := <-serveErr; err != nil {
		t.Fatalf("UE over TCP: %v", err)
	}
}

func TestUEPeerRejectsRFOnly(t *testing.T) {
	d := tinyDataset(t, 60)
	if _, err := NewUEPeer(tinyConfig(split.RFOnly, 1), d, nil); err == nil {
		t.Fatal("RF-only UE peer accepted")
	}
}

func TestUEPeerRejectsBadAnchor(t *testing.T) {
	d := tinyDataset(t, 60)
	cfg := tinyConfig(split.ImageRF, 4)
	ueConn, bsConn := net.Pipe()
	ue, err := NewUEPeer(cfg, d, ueConn)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- ue.Serve() }()

	// Anchor 0 has no full input sequence (L = 2 needs frame -1).
	if err := WriteMessage(bsConn, &Message{Type: MsgBatchRequest, Step: 1, Anchors: []int32{0}}); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err == nil {
		t.Fatal("UE accepted out-of-range anchor")
	}
	ueConn.Close()
	bsConn.Close()
}

func TestRFOnlyBSPeerNeedsNoConnection(t *testing.T) {
	d := tinyDataset(t, 150)
	cfg := tinyConfig(split.RFOnly, 1)
	sp, err := dataset.NewSplit(d, cfg.SeqLen, cfg.HorizonFrames, 100)
	if err != nil {
		t.Fatal(err)
	}
	bs, err := NewBSPeer(cfg, d, sp, nil) // nil conn: never touched
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, err := bs.TrainStep(); err != nil {
			t.Fatal(err)
		}
	}
	rmse, err := bs.Evaluate(sp.Val[:10])
	if err != nil {
		t.Fatal(err)
	}
	if rmse <= 0 {
		t.Fatalf("RMSE = %g", rmse)
	}
}
