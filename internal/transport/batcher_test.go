package transport

import (
	"bytes"
	"fmt"
	"io"
	"math"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/compress"
	"repro/internal/dataset"
	"repro/internal/split"
	"repro/internal/tensor"
)

// Invariant 8: batching is mathematically invisible. N sessions served
// through the pipelined/batched path produce byte-identical wire
// traffic in both directions — hence Float64bits-identical activations
// and gradients — and bit-identical final UE model halves, compared to
// the same sessions run one at a time through the serial path.

// recordConn tees both directions of a connection into buffers.
type recordConn struct {
	inner io.ReadWriteCloser
	mu    sync.Mutex
	in    bytes.Buffer // bytes read (BS→UE when wrapping the UE side)
	out   bytes.Buffer // bytes written (UE→BS)
}

func (c *recordConn) Read(p []byte) (int, error) {
	n, err := c.inner.Read(p)
	c.mu.Lock()
	c.in.Write(p[:n])
	c.mu.Unlock()
	return n, err
}

func (c *recordConn) Write(p []byte) (int, error) {
	c.mu.Lock()
	c.out.Write(p)
	c.mu.Unlock()
	return c.inner.Write(p)
}

func (c *recordConn) Close() error { return c.inner.Close() }

func (c *recordConn) streams() (in, out []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]byte(nil), c.in.Bytes()...), append([]byte(nil), c.out.Bytes()...)
}

// sessionRun is the observable outcome of one UE's session: both wire
// streams and the final UE-half parameters.
type sessionRun struct {
	in, out []byte
	params  []*tensor.Tensor
}

// gatedProvision wraps tinySessionEnv so no session is provisioned until
// n handshakes are in flight — the batched run's sessions start their
// rounds together, exercising the coalescing path deterministically.
func gatedProvision(n int) Provision {
	gate := make(chan struct{})
	var joined atomic.Int32
	return func(h Hello) (split.Config, *dataset.Dataset, *dataset.Split, error) {
		if joined.Add(1) == int32(n) {
			close(gate)
		}
		<-gate
		return tinySessionEnv(h)
	}
}

// runBatchedSessions serves the hellos concurrently through one batched
// server and returns each session's run, keyed by session id.
func runBatchedSessions(t *testing.T, hellos []Hello, steps int) (map[string]sessionRun, *BSServer) {
	t.Helper()
	srv, err := NewBSServer(ServerConfig{
		MaxUE: len(hellos), Sched: SchedAsync,
		Steps: steps, EvalEvery: steps / 2, ValAnchors: 8,
		Provision:   gatedProvision(len(hellos)),
		BatchWindow: 200 * time.Millisecond, BatchMax: len(hellos),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	runs := make(map[string]sessionRun, len(hellos))
	var mu sync.Mutex
	var wg sync.WaitGroup
	errs := make(chan error, 2*len(hellos))
	for _, h := range hellos {
		h := h
		cfg, d, _, err := tinySessionEnv(h)
		if err != nil {
			t.Fatal(err)
		}
		cfg.Codec = compress.ID(h.Codec)
		h.ConfigFP = cfg.Fingerprint()
		ueConn, bsConn := net.Pipe()
		rec := &recordConn{inner: ueConn}
		wg.Add(2)
		go func() {
			defer wg.Done()
			if err := srv.Handle(bsConn); err != nil {
				errs <- fmt.Errorf("BS %s: %w", h.SessionID, err)
			}
		}()
		go func() {
			defer wg.Done()
			run, err := serveRecordedUE(rec, h, cfg, d)
			if err != nil {
				errs <- fmt.Errorf("UE %s: %w", h.SessionID, err)
				return
			}
			mu.Lock()
			runs[h.SessionID] = run
			mu.Unlock()
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	return runs, srv
}

// runSoloSession serves one hello against a fresh serial (un-batched)
// server — the reference execution.
func runSoloSession(t *testing.T, h Hello, steps int) sessionRun {
	t.Helper()
	srv, err := NewBSServer(ServerConfig{
		MaxUE: 1, Sched: SchedAsync,
		Steps: steps, EvalEvery: steps / 2, ValAnchors: 8,
		Provision: tinySessionEnv,
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg, d, _, err := tinySessionEnv(h)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Codec = compress.ID(h.Codec)
	h.ConfigFP = cfg.Fingerprint()
	ueConn, bsConn := net.Pipe()
	rec := &recordConn{inner: ueConn}
	done := make(chan error, 1)
	go func() { done <- srv.Handle(bsConn) }()
	run, err := serveRecordedUE(rec, h, cfg, d)
	if err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	return run
}

// serveRecordedUE joins and serves one UE over a recording connection,
// returning the streams and a deep copy of the final UE parameters.
func serveRecordedUE(rec *recordConn, h Hello, cfg split.Config, d *dataset.Dataset) (sessionRun, error) {
	if _, err := JoinSession(rec, h); err != nil {
		return sessionRun{}, err
	}
	ue, err := NewUEPeer(cfg, d, rec)
	if err != nil {
		return sessionRun{}, err
	}
	if err := ue.Serve(); err != nil {
		return sessionRun{}, err
	}
	var run sessionRun
	run.in, run.out = rec.streams()
	for _, p := range ue.Model.Params() {
		run.params = append(run.params, p.Value.Clone())
	}
	return run, nil
}

func equalRuns(t *testing.T, id string, got, want sessionRun) {
	t.Helper()
	if !bytes.Equal(got.out, want.out) {
		t.Errorf("session %s: UE→BS stream differs (batched %d B vs solo %d B)",
			id, len(got.out), len(want.out))
	}
	if !bytes.Equal(got.in, want.in) {
		t.Errorf("session %s: BS→UE stream differs (batched %d B vs solo %d B)",
			id, len(got.in), len(want.in))
	}
	if len(got.params) != len(want.params) {
		t.Fatalf("session %s: %d params vs %d", id, len(got.params), len(want.params))
	}
	for i := range got.params {
		a, b := got.params[i].Data(), want.params[i].Data()
		for j := range a {
			if math.Float64bits(a[j]) != math.Float64bits(b[j]) {
				t.Errorf("session %s: param %d element %d differs: %x vs %x",
					id, i, j, math.Float64bits(a[j]), math.Float64bits(b[j]))
				return
			}
		}
	}
}

// batchHellos builds n same-seed clone hellos plus one odd-seed session.
func batchHellos(n int, codec compress.ID) []Hello {
	hellos := make([]Hello, 0, n+1)
	for i := 0; i < n; i++ {
		h := Hello{
			SessionID: fmt.Sprintf("clone-%d", i),
			Seed:      7, Frames: 200, Pool: 4,
			Modality: uint8(split.ImageRF),
			Codec:    uint8(codec),
		}
		hellos = append(hellos, h)
	}
	hellos = append(hellos, Hello{
		SessionID: "odd",
		Seed:      31, Frames: 200, Pool: 4,
		Modality: uint8(split.ImageRF),
		Codec:    uint8(codec),
	})
	return hellos
}

func TestBatchedMatchesSoloBitIdentical(t *testing.T) {
	const steps = 12
	for _, codec := range []compress.ID{
		compress.CodecRaw, compress.CodecFloat16, compress.CodecQuantInt8, compress.CodecTopK,
	} {
		t.Run(codec.String(), func(t *testing.T) {
			hellos := batchHellos(3, codec)
			batched, srv := runBatchedSessions(t, hellos, steps)
			if shared := srv.SharedRounds(); shared == 0 {
				t.Error("no rounds were served by shared computation — batching never engaged")
			}
			// Solo references: one per distinct seed is enough for the
			// clones, but run every session to also cover the odd one.
			for _, h := range hellos {
				solo := runSoloSession(t, h, steps)
				equalRuns(t, h.SessionID, batched[h.SessionID], solo)
			}
		})
	}
}

// TestBatchedMatchesSoloAcrossWorkers re-runs the raw-codec identity
// check under a different tensor worker-pool size: the shared GEMM must
// be bit-stable against kernel parallelism too.
func TestBatchedMatchesSoloAcrossWorkers(t *testing.T) {
	old := tensor.Workers()
	defer tensor.SetWorkers(old)
	const steps = 8
	hellos := batchHellos(2, compress.CodecRaw)

	tensor.SetWorkers(3)
	batched, srv := runBatchedSessions(t, hellos, steps)
	if srv.SharedRounds() == 0 {
		t.Error("batching never engaged")
	}
	tensor.SetWorkers(1)
	for _, h := range hellos {
		solo := runSoloSession(t, h, steps)
		equalRuns(t, h.SessionID, batched[h.SessionID], solo)
	}
}

// TestBatcherLatencyRecorded pins the serving-latency instrumentation
// both paths feed.
func TestBatcherLatencyRecorded(t *testing.T) {
	hellos := batchHellos(2, compress.CodecRaw)
	_, srv := runBatchedSessions(t, hellos, 6)
	p50, p99, n := srv.RoundLatency()
	if n == 0 || p50 <= 0 || p99 < p50 {
		t.Fatalf("round latency p50=%v p99=%v n=%d", p50, p99, n)
	}
}
