package transport

import (
	"fmt"
	"time"

	"repro/internal/compress"
)

// Live reconfiguration. ServerConfig is read once at boot; the subset
// of it that can change safely while sessions are being served lives in
// a Policy, held behind an atomic pointer on the BSServer and resolved
// at its natural binding point — session join for admission parameters,
// round boundary for scheduling ones — rather than captured at startup.
// The indirection follows the runtime config-substitution pattern: code
// never holds a policy value across a binding point, it asks for "the
// current policy" when the decision is made, and a swap (SetPolicy,
// driven by the control plane's PUT /config) is one atomic pointer
// exchange, so an in-flight round can never observe a torn mix of two
// policies.
//
// What a policy can never change is the mathematics: codec and
// fingerprint are fixed per session at join, the batch window only
// decides when rounds coalesce (invariant 8 pins batched ≡ solo
// bit-identically), and the checkpoint interval only decides when state
// is persisted (invariant 7 pins resumed ≡ uninterrupted). The fields
// deliberately exclude anything that would break those invariants
// mid-session.

// Policy is the runtime-mutable subset of ServerConfig. Each field
// documents when a change binds.
type Policy struct {
	// MaxUE caps concurrent live sessions. Binds at session join:
	// lowering it below the current occupancy evicts nobody, it only
	// refuses new admissions until attrition brings the count under the
	// new cap.
	MaxUE int

	// IdleTimeout is the per-operation I/O stall budget after which a
	// session is failed and its slot freed. Binds at session join (each
	// incarnation's connection is wrapped once); 0 disables.
	IdleTimeout time.Duration

	// BatchWindow is the pipelined path's coalescing window. Binds at
	// the next round arriving at the dispatcher. 0 keeps the stage
	// pipeline but dispatches rounds without coalescing. Whether the
	// pipelined path exists at all is boot-only (ServerConfig.BatchWindow
	// > 0 starts the stage workers): a server booted serial cannot be
	// switched to pipelined by policy.
	BatchWindow time.Duration

	// BatchMax caps rounds coalesced per dispatch. Binds at the next
	// round arriving at the dispatcher.
	BatchMax int

	// CheckpointEvery is the checkpoint interval in training steps.
	// Binds at each session's next completed step. Whether checkpointing
	// exists at all (ServerConfig.CheckpointDir) is boot-only.
	CheckpointEvery int

	// DefaultCodec is granted to sessions whose hello requests
	// CodecServerDefault instead of a concrete codec. Binds at session
	// join; sessions that named a codec are never overridden.
	DefaultCodec compress.ID
}

// Validate reports the first reason p cannot be installed.
func (p Policy) Validate() error {
	switch {
	case p.MaxUE < 1:
		return fmt.Errorf("transport: policy MaxUE %d < 1", p.MaxUE)
	case p.IdleTimeout < 0:
		return fmt.Errorf("transport: policy IdleTimeout %v < 0", p.IdleTimeout)
	case p.BatchWindow < 0:
		return fmt.Errorf("transport: policy BatchWindow %v < 0", p.BatchWindow)
	case p.BatchMax < 1:
		return fmt.Errorf("transport: policy BatchMax %d < 1", p.BatchMax)
	case p.CheckpointEvery < 1:
		return fmt.Errorf("transport: policy CheckpointEvery %d < 1", p.CheckpointEvery)
	case !p.DefaultCodec.Valid():
		return fmt.Errorf("transport: policy default codec id %d unknown", uint8(p.DefaultCodec))
	}
	return nil
}

// policy extracts the boot-time policy from a defaulted ServerConfig.
func (c *ServerConfig) policy() Policy {
	return Policy{
		MaxUE:           c.MaxUE,
		IdleTimeout:     c.IdleTimeout,
		BatchWindow:     c.BatchWindow,
		BatchMax:        c.BatchMax,
		CheckpointEvery: c.CheckpointEvery,
		DefaultCodec:    compress.CodecRaw,
	}
}

// CurrentPolicy returns the policy now in force.
func (s *BSServer) CurrentPolicy() Policy { return *s.pol.Load() }

// SetPolicy atomically installs p as the current policy after
// validating it. New values bind at each field's documented point
// (session join or round boundary); nothing in flight is disturbed.
// Raising BatchWindow above zero on a server booted without the
// pipelined path is rejected — the stage workers only start at boot.
func (s *BSServer) SetPolicy(p Policy) error {
	if err := p.Validate(); err != nil {
		return err
	}
	if p.BatchWindow > 0 && s.hub == nil {
		return fmt.Errorf("transport: pipelined serving is boot-only: restart with ServerConfig.BatchWindow > 0 to enable coalescing")
	}
	old := s.pol.Swap(&p)
	if *old != p {
		s.cfg.Logf("bs-server: policy %+v (was %+v)", p, *old)
	}
	return nil
}
