package transport

import (
	"testing"
	"time"
)

func TestLatencyRingEmpty(t *testing.T) {
	var r latencyRing
	p50, p99, n := r.percentiles()
	if p50 != 0 || p99 != 0 || n != 0 {
		t.Fatalf("empty ring: p50 %v p99 %v n %d, want zeros", p50, p99, n)
	}
	h := r.snapshotHistogram()
	if h.Count != 0 || h.Sum != 0 {
		t.Fatalf("empty histogram: count %d sum %v, want zeros", h.Count, h.Sum)
	}
	for i, c := range h.Counts {
		if c != 0 {
			t.Fatalf("empty histogram bucket %d holds %d", i, c)
		}
	}
	if len(h.Counts) != len(h.Bounds)+1 {
		t.Fatalf("histogram has %d counts for %d bounds, want bounds+1", len(h.Counts), len(h.Bounds))
	}
}

func TestLatencyRingSingleSample(t *testing.T) {
	var r latencyRing
	const d = 3 * time.Millisecond
	r.record(d)
	p50, p99, n := r.percentiles()
	if n != 1 || p50 != d || p99 != d {
		t.Fatalf("single sample: p50 %v p99 %v n %d, want %v/%v/1", p50, p99, n, d, d)
	}
	h := r.snapshotHistogram()
	if h.Count != 1 || h.Sum != d {
		t.Fatalf("single-sample histogram: count %d sum %v, want 1/%v", h.Count, h.Sum, d)
	}
	// 3ms must land in the first bucket whose bound admits it (5ms).
	want := 0
	for want < len(h.Bounds) && d > h.Bounds[want] {
		want++
	}
	for i, c := range h.Counts {
		if (i == want) != (c == 1) {
			t.Fatalf("bucket %d count %d, sample should be only in bucket %d (≤ %v)",
				i, c, want, h.Bounds[want])
		}
	}
}

// TestLatencyRingWraparound records more samples than the ring holds
// and checks the percentile view describes only the retained suffix
// while the histogram keeps the full lifetime count.
func TestLatencyRingWraparound(t *testing.T) {
	var r latencyRing
	cap := int64(len(r.buf))
	total := cap + cap/2
	// First half: slow samples that wraparound must completely displace.
	for i := int64(0); i < cap/2; i++ {
		r.record(time.Second)
	}
	// Then a full ring of fast samples.
	for i := int64(0); i < cap; i++ {
		r.record(time.Millisecond)
	}
	p50, p99, n := r.percentiles()
	if n != total {
		t.Fatalf("recorded count %d, want %d", n, total)
	}
	if p50 != time.Millisecond || p99 != time.Millisecond {
		t.Fatalf("after wraparound p50 %v p99 %v, want 1ms/1ms (slow samples displaced)", p50, p99)
	}
	h := r.snapshotHistogram()
	if h.Count != total {
		t.Fatalf("histogram count %d, want lifetime %d", h.Count, total)
	}
	wantSum := time.Duration(cap/2)*time.Second + time.Duration(cap)*time.Millisecond
	if h.Sum != wantSum {
		t.Fatalf("histogram sum %v, want %v", h.Sum, wantSum)
	}
	var got int64
	for _, c := range h.Counts {
		got += c
	}
	if got != h.Count {
		t.Fatalf("histogram buckets sum to %d, Count says %d", got, h.Count)
	}
}

// TestLatencyRingBoundsSorted pins the bucket invariants the exposition
// depends on: ascending bounds and an explicit overflow bucket.
func TestLatencyRingBoundsSorted(t *testing.T) {
	for i := 1; i < len(latBounds); i++ {
		if latBounds[i] <= latBounds[i-1] {
			t.Fatalf("latBounds[%d] %v ≤ latBounds[%d] %v", i, latBounds[i], i-1, latBounds[i-1])
		}
	}
	var r latencyRing
	r.record(latBounds[len(latBounds)-1] + time.Second) // past every bound
	h := r.snapshotHistogram()
	if h.Counts[len(h.Counts)-1] != 1 {
		t.Fatalf("overflow sample not in +Inf bucket: %v", h.Counts)
	}
}
