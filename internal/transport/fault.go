package transport

import (
	"errors"
	"io"
	"sync"
)

// Fault injection for the transport layer. A FaultConn wraps any
// connection-like stream and severs it after a configured byte budget —
// the software analogue of a mmWave link dropping mid-frame. The cut is
// deliberately ragged: the final Write delivers only the bytes left in
// the budget before the stream closes, so the peer sees a truncated
// frame, exactly like a UE dying halfway through an activations upload.
// Tests, examples and the CI fault-injection pass all drive it.

// ErrInjectedFault is returned by a FaultConn operation once its budget
// is exhausted.
var ErrInjectedFault = errors.New("transport: injected connection fault")

// FaultConn severs a connection after a read and/or write byte budget.
type FaultConn struct {
	inner io.ReadWriteCloser

	mu          sync.Mutex
	readBudget  int64 // bytes this end may still read; < 0: unlimited
	writeBudget int64 // bytes this end may still write; < 0: unlimited
	tripped     bool
}

// NewFaultConn wraps inner with the given budgets; a negative budget
// never trips. A zero budget trips on the first operation.
func NewFaultConn(inner io.ReadWriteCloser, readBudget, writeBudget int64) *FaultConn {
	return &FaultConn{inner: inner, readBudget: readBudget, writeBudget: writeBudget}
}

// Tripped reports whether the fault has fired.
func (f *FaultConn) Tripped() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.tripped
}

// take consumes up to n from the budget, returning how many bytes the
// operation may move and whether the fault fires after them.
func (f *FaultConn) take(budget *int64, n int) (allowed int, trip bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.tripped {
		return 0, true
	}
	if *budget < 0 {
		return n, false
	}
	if int64(n) <= *budget {
		*budget -= int64(n)
		return n, false
	}
	allowed = int(*budget)
	*budget = 0
	f.tripped = true
	return allowed, true
}

// Read implements io.Reader, severing the stream when the read budget
// runs out.
func (f *FaultConn) Read(p []byte) (int, error) {
	allowed, trip := f.take(&f.readBudget, len(p))
	if allowed == 0 && trip {
		f.inner.Close()
		return 0, ErrInjectedFault
	}
	n, err := f.inner.Read(p[:allowed])
	if trip {
		f.inner.Close()
		if err == nil {
			err = ErrInjectedFault
		}
	}
	return n, err
}

// Write implements io.Writer: the final write delivers only the budget
// remainder (a truncated frame on the peer's side) before the close.
func (f *FaultConn) Write(p []byte) (int, error) {
	allowed, trip := f.take(&f.writeBudget, len(p))
	var n int
	var err error
	if allowed > 0 {
		n, err = f.inner.Write(p[:allowed])
	}
	if trip {
		f.inner.Close()
		if err == nil {
			err = ErrInjectedFault
		}
	}
	return n, err
}

// Close implements io.Closer.
func (f *FaultConn) Close() error { return f.inner.Close() }
