// Package online runs the *deployed* split model: streaming inference
// frame by frame over the wireless hop, the proactive-operation use case
// the paper's introduction motivates (predict the power drop before it
// happens and act on it).
//
// Each camera frame the UE runs its CNN half and ships the pooled
// features uplink within a per-frame slot budget (γ/τ = 33 slots at the
// paper's parameters). A frame that misses its deadline leaves the BS
// holding the last delivered features (staleness grows); the BS always
// fuses whatever image features it has with its locally measured RF
// powers and predicts T = 120 ms ahead.
//
// Two observations fall out of this runtime and are verified by tests:
//
//  1. At the paper's parameters, inference traffic is trivial for every
//     pooling — the mini-batch (×64) and sequence (×4) multipliers that
//     choke *training* are absent, so even the uncompressed CNN output
//     streams in real time over 30 MHz.
//  2. On a narrowband control channel (e.g. 100 kHz), only aggressively
//     pooled schemes stream without outage — the deployment-side
//     argument for the 1-pixel design point.
package online

import (
	"fmt"

	"repro/internal/channel"
	"repro/internal/dataset"
	"repro/internal/metrics"
	"repro/internal/split"
	"repro/internal/tensor"
)

// Config parameterises a streaming run.
type Config struct {
	// FrameBudgetSlots is the per-frame delivery deadline in slots
	// (γ/τ = 33 for the paper's 33 ms frame period and 1 ms slots).
	FrameBudgetSlots int
}

// DefaultConfig returns the paper-parameter streaming configuration.
func DefaultConfig() Config {
	return Config{FrameBudgetSlots: int(dataset.PaperFramePeriodS / 1e-3)}
}

// Stats summarises a streaming run.
type Stats struct {
	Frames        int
	Delivered     int     // frames whose features arrived in time
	Outages       int     // frames that missed the deadline
	MeanStaleness float64 // mean age (frames) of the features the BS used
	MaxStaleness  int
	SlotsUsed     int64   // total uplink slots consumed
	RMSEdB        float64 // prediction error over the streamed window
}

// Result carries the predictions and the run statistics.
type Result struct {
	Anchors []int
	PredDBm []float64
	Stats   Stats
}

// Stream runs the deployed model over the consecutive anchor range
// [first, last] using ch as the uplink (nil for RF-only schemes). The
// model must be trained; Stream performs no parameter updates.
func Stream(model *split.Model, data *dataset.Dataset, ch *channel.Channel, cfg Config, first, last int) (*Result, error) {
	mcfg := model.Cfg
	if first < mcfg.SeqLen-1 || last+mcfg.HorizonFrames >= data.Len() || first > last {
		return nil, fmt.Errorf("online: window [%d, %d] outside usable range", first, last)
	}
	if cfg.FrameBudgetSlots <= 0 {
		return nil, fmt.Errorf("online: non-positive frame budget %d", cfg.FrameBudgetSlots)
	}
	if mcfg.Modality.UsesImages() && ch == nil {
		return nil, fmt.Errorf("online: image scheme needs an uplink channel")
	}

	featPx := mcfg.FeaturePixels(data)
	dim := mcfg.RNNInputDim(data)
	L := mcfg.SeqLen

	// The BS's view of the most recent image features, plus their age.
	lastFeat := make([]float64, featPx)
	staleness := 0
	everDelivered := false

	// Ring of the last L fused steps as the BS saw them.
	history := make([][]float64, 0, L)

	res := &Result{}
	var stalenessSum float64

	// Warm up the history with the frames before the first anchor.
	for k := first - L + 1; k <= last; k++ {
		// UE side: compute and attempt to deliver this frame's features.
		if mcfg.Modality.UsesImages() {
			img := tensor.New(1, 1, data.H, data.W)
			copy(img.Data(), data.Image(k))
			pooled := model.UE.Forward(img)

			bits := tensor.EncodedBits(pooled, mcfg.BitDepth)
			out, err := ch.TransmitWithDeadline(bits, cfg.FrameBudgetSlots)
			if err != nil {
				return nil, err
			}
			res.Stats.SlotsUsed += int64(out.Slots)
			if out.Delivered {
				copy(lastFeat, pooled.Data()[:featPx])
				staleness = 0
				everDelivered = true
				res.Stats.Delivered++
			} else {
				staleness++
				res.Stats.Outages++
			}
			res.Stats.Frames++
		}

		// BS side: append the fused step it can actually construct.
		step := make([]float64, dim)
		if mcfg.Modality.UsesImages() && everDelivered {
			copy(step[:featPx], lastFeat)
		}
		if mcfg.Modality.UsesRF() {
			step[dim-1] = model.Norm.Normalize(data.Powers[k])
		}
		history = append(history, step)
		if len(history) > L {
			history = history[1:]
		}

		if k < first {
			continue // still warming up
		}
		stalenessSum += float64(staleness)
		if staleness > res.Stats.MaxStaleness {
			res.Stats.MaxStaleness = staleness
		}

		// Predict from the BS's current history window.
		seq := tensor.New(1, L, dim)
		for t, st := range history {
			copy(seq.Data()[t*dim:(t+1)*dim], st)
		}
		pred := model.BS.Forward(seq)
		res.Anchors = append(res.Anchors, k)
		res.PredDBm = append(res.PredDBm, model.Norm.Denormalize(pred.Data()[0]))
	}

	truth := make([]float64, len(res.Anchors))
	for i, k := range res.Anchors {
		truth[i] = data.Powers[k+mcfg.HorizonFrames]
	}
	res.Stats.RMSEdB = metrics.RMSE(res.PredDBm, truth)
	res.Stats.MeanStaleness = stalenessSum / float64(len(res.Anchors))
	return res, nil
}
