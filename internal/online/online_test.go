package online

import (
	"math/rand"
	"testing"

	"repro/internal/channel"
	"repro/internal/dataset"
	"repro/internal/radio"
	"repro/internal/split"
)

// smallWorld builds a trained-ish model over a small dataset.
func smallWorld(t *testing.T, m split.Modality, pool int) (*split.Model, *dataset.Dataset, *dataset.Split) {
	t.Helper()
	gen := dataset.DefaultGenConfig()
	gen.NumFrames = 400
	gen.Seed = 21
	gen.Scene.ImageH, gen.Scene.ImageW = 8, 8
	gen.Scene.FocalPixels = 5
	d, err := dataset.Generate(gen)
	if err != nil {
		t.Fatal(err)
	}
	cfg := split.DefaultConfig(m, pool)
	cfg.SeqLen = 2
	cfg.HorizonFrames = 2
	cfg.BatchSize = 8
	cfg.HiddenSize = 6
	sp, err := dataset.NewSplit(d, cfg.SeqLen, cfg.HorizonFrames, 280)
	if err != nil {
		t.Fatal(err)
	}
	norm := dataset.FitNormalizer(d, sp.Train)
	model, err := split.NewModel(cfg, d, norm)
	if err != nil {
		t.Fatal(err)
	}
	tr := split.NewTrainer(model, d, sp, split.IdealLink{})
	for i := 0; i < 30; i++ {
		if _, err := tr.Step(); err != nil {
			t.Fatal(err)
		}
	}
	return model, d, sp
}

func paperUplink(seed int64) *channel.Channel {
	return channel.MustNew(radio.PaperUplink(), radio.PaperSlotSeconds,
		rand.New(rand.NewSource(seed)))
}

// narrowband returns a power-starved 100 kHz control-channel uplink:
// ~100 bits decode per slot, so multi-kilobit frames miss the 33-slot
// deadline while sub-slot payloads stream freely. (Bandwidth alone is not
// enough — less bandwidth also means less noise — so transmit power drops
// with it.)
func narrowband(seed int64) *channel.Channel {
	b := radio.PaperUplink()
	b.BandwidthHz = 100e3
	b.TxPowerDBm = -35
	return channel.MustNew(b, radio.PaperSlotSeconds, rand.New(rand.NewSource(seed)))
}

func TestStreamWideband(t *testing.T) {
	model, d, sp := smallWorld(t, split.ImageRF, 4)
	res, err := Stream(model, d, paperUplink(1), DefaultConfig(), sp.Val[0], sp.Val[0]+60)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Outages != 0 {
		t.Fatalf("wideband inference had %d outages", res.Stats.Outages)
	}
	if res.Stats.MeanStaleness != 0 {
		t.Fatalf("staleness %g on an outage-free run", res.Stats.MeanStaleness)
	}
	if len(res.PredDBm) != 61 {
		t.Fatalf("%d predictions, want 61", len(res.PredDBm))
	}
	if res.Stats.RMSEdB <= 0 || res.Stats.RMSEdB > 60 {
		t.Fatalf("RMSE = %g dB", res.Stats.RMSEdB)
	}
}

func TestStreamNarrowbandOnePixelSurvives(t *testing.T) {
	// 8×8 pooling of 8×8 images → 1 px/frame: tiny payload streams even
	// at 100 kHz.
	model, d, sp := smallWorld(t, split.ImageRF, 8)
	res, err := Stream(model, d, narrowband(2), DefaultConfig(), sp.Val[0], sp.Val[0]+40)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Outages != 0 {
		t.Fatalf("1-pixel narrowband streaming had %d outages", res.Stats.Outages)
	}
}

func TestStreamNarrowbandUnpooledStarves(t *testing.T) {
	// 1×1 pooling → 64 px/frame at Depth32 ≈ 2 kbit/frame; a 100 kHz
	// channel decodes at most 100 bits/slot-ish, so frames miss their
	// 33-slot deadline routinely.
	model, d, sp := smallWorld(t, split.ImageRF, 1)
	res, err := Stream(model, d, narrowband(3), DefaultConfig(), sp.Val[0], sp.Val[0]+40)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Outages == 0 {
		t.Fatal("unpooled narrowband streaming reported no outages")
	}
	if res.Stats.MaxStaleness == 0 {
		t.Fatal("outages without staleness")
	}
}

func TestStreamRFOnlyNeedsNoChannel(t *testing.T) {
	model, d, sp := smallWorld(t, split.RFOnly, 1)
	res, err := Stream(model, d, nil, DefaultConfig(), sp.Val[0], sp.Val[0]+30)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Frames != 0 || res.Stats.SlotsUsed != 0 {
		t.Fatalf("RF-only used the uplink: %+v", res.Stats)
	}
	if len(res.PredDBm) != 31 {
		t.Fatalf("%d predictions", len(res.PredDBm))
	}
}

func TestStreamValidation(t *testing.T) {
	model, d, sp := smallWorld(t, split.ImageRF, 4)
	ch := paperUplink(4)
	if _, err := Stream(model, d, ch, DefaultConfig(), 0, 10); err == nil {
		t.Fatal("window before first usable anchor accepted")
	}
	if _, err := Stream(model, d, ch, Config{FrameBudgetSlots: 0}, sp.Val[0], sp.Val[0]+5); err == nil {
		t.Fatal("zero budget accepted")
	}
	if _, err := Stream(model, d, nil, DefaultConfig(), sp.Val[0], sp.Val[0]+5); err == nil {
		t.Fatal("image scheme without channel accepted")
	}
}

func TestStreamMatchesBatchPredictionWhenFresh(t *testing.T) {
	// With zero outages and a full history window, streaming predictions
	// must equal the batch PredictAnchors output for the same anchors.
	model, d, sp := smallWorld(t, split.ImageRF, 4)
	first := sp.Val[0]
	res, err := Stream(model, d, paperUplink(5), DefaultConfig(), first, first+20)
	if err != nil {
		t.Fatal(err)
	}
	batch := model.PredictAnchors(res.Anchors)
	for i := range batch {
		diff := res.PredDBm[i] - batch[i]
		if diff > 1e-9 || diff < -1e-9 {
			t.Fatalf("anchor %d: streaming %g != batch %g", res.Anchors[i], res.PredDBm[i], batch[i])
		}
	}
}

func TestDefaultConfigBudget(t *testing.T) {
	// γ/τ = 33 ms / 1 ms.
	if got := DefaultConfig().FrameBudgetSlots; got != 33 {
		t.Fatalf("frame budget = %d slots, want 33", got)
	}
}
