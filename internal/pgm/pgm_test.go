package pgm

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestWriteHeaderAndSize(t *testing.T) {
	img := []float64{0, 0.5, 1, 0.25, 0.75, 0.1}
	var buf bytes.Buffer
	if err := Write(&buf, img, 2, 3); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	if !bytes.HasPrefix(data, []byte("P5\n3 2\n255\n")) {
		t.Fatalf("header = %q", data[:12])
	}
	if len(data) != len("P5\n3 2\n255\n")+6 {
		t.Fatalf("file size = %d", len(data))
	}
}

func TestWriteNormalises(t *testing.T) {
	// Arbitrary dynamic range must map to the full 0..255 span.
	img := []float64{-40, -20}
	var buf bytes.Buffer
	if err := Write(&buf, img, 1, 2); err != nil {
		t.Fatal(err)
	}
	px := buf.Bytes()[len(buf.Bytes())-2:]
	if px[0] != 0 || px[1] != 255 {
		t.Fatalf("pixels = %v, want [0 255]", px)
	}
}

func TestWriteConstantImage(t *testing.T) {
	img := []float64{0.42, 0.42, 0.42, 0.42}
	var buf bytes.Buffer
	if err := Write(&buf, img, 2, 2); err != nil {
		t.Fatal(err)
	}
}

func TestWriteRejectsBadSize(t *testing.T) {
	if err := Write(&bytes.Buffer{}, []float64{1, 2, 3}, 2, 2); err == nil {
		t.Fatal("size mismatch accepted")
	}
}

func TestWriteFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "out.pgm")
	if err := WriteFile(path, []float64{0, 1}, 1, 2); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(data, []byte("P5\n")) {
		t.Fatal("file is not a PGM")
	}
}

func TestASCIIShape(t *testing.T) {
	img := []float64{0, 1, 0.5, 0.5}
	art := ASCII(img, 2, 2)
	lines := strings.Split(strings.TrimRight(art, "\n"), "\n")
	if len(lines) != 2 || len(lines[0]) != 2 {
		t.Fatalf("ASCII layout: %q", art)
	}
	// Darkest pixel maps to space, brightest to '@'.
	if art[0] != ' ' {
		t.Fatalf("dark glyph = %q", art[0])
	}
	if art[1] != '@' {
		t.Fatalf("bright glyph = %q", art[1])
	}
}
