// Package pgm renders grayscale images — raw depth frames and CNN output
// feature maps — as portable graymap (P5) files and as ASCII art for
// terminal inspection. It is how this repository reproduces Fig. 2.
package pgm

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"os"
	"strings"
)

// Write emits a binary P5 PGM of the row-major h×w image. Pixel values
// are min-max normalised into 0..255 over the image itself so feature
// maps with arbitrary dynamic range remain visible.
func Write(w io.Writer, img []float64, h, width int) error {
	if len(img) != h*width {
		return fmt.Errorf("pgm: %d pixels for %dx%d image", len(img), h, width)
	}
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "P5\n%d %d\n255\n", width, h); err != nil {
		return err
	}
	lo, hi := minMax(img)
	span := hi - lo
	if span <= 0 {
		span = 1
	}
	for _, v := range img {
		if err := bw.WriteByte(byte(math.Round((v - lo) / span * 255))); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// WriteFile writes a PGM to a path.
func WriteFile(path string, img []float64, h, w int) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := Write(f, img, h, w); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// asciiRamp orders glyphs from dark to bright.
const asciiRamp = " .:-=+*#%@"

// ASCII renders the image as terminal art, one glyph per pixel, rows
// separated by newlines.
func ASCII(img []float64, h, w int) string {
	lo, hi := minMax(img)
	span := hi - lo
	if span <= 0 {
		span = 1
	}
	var b strings.Builder
	b.Grow((w + 1) * h)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			v := (img[y*w+x] - lo) / span
			idx := int(v * float64(len(asciiRamp)-1))
			if idx < 0 {
				idx = 0
			} else if idx >= len(asciiRamp) {
				idx = len(asciiRamp) - 1
			}
			b.WriteByte(asciiRamp[idx])
		}
		b.WriteByte('\n')
	}
	return b.String()
}

func minMax(img []float64) (lo, hi float64) {
	lo, hi = math.Inf(1), math.Inf(-1)
	for _, v := range img {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	return lo, hi
}
