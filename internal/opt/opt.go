// Package opt implements the first-order stochastic optimisers used to
// train the split model. The paper trains with Adam (lr = 0.001,
// β₁ = 0.9, β₂ = 0.999); SGD, momentum-SGD and RMSProp are provided as
// ablation baselines.
//
// An Optimizer owns per-parameter state keyed by position in the slice it
// was constructed with; call Step after each backward pass and ZeroGrads
// (from internal/nn) before the next forward.
package opt

import (
	"math"

	"repro/internal/nn"
)

// Optimizer updates parameter values from their accumulated gradients.
type Optimizer interface {
	// Step applies one update to every parameter the optimiser manages.
	Step()
	// Params returns the managed parameters.
	Params() []*nn.Param
}

// SGD is plain stochastic gradient descent: w ← w − lr·g.
type SGD struct {
	LR     float64
	params []*nn.Param
}

// NewSGD returns an SGD optimiser over params.
func NewSGD(params []*nn.Param, lr float64) *SGD {
	return &SGD{LR: lr, params: params}
}

// Step applies one SGD update.
func (s *SGD) Step() {
	for _, p := range s.params {
		p.Value.AddScaledInPlace(p.Grad, -s.LR)
	}
}

// Params returns the managed parameters.
func (s *SGD) Params() []*nn.Param { return s.params }

// Momentum is SGD with classical momentum: v ← μv − lr·g; w ← w + v.
type Momentum struct {
	LR, Mu float64
	params []*nn.Param
	vel    [][]float64
}

// NewMomentum returns a momentum optimiser (μ typically 0.9).
func NewMomentum(params []*nn.Param, lr, mu float64) *Momentum {
	m := &Momentum{LR: lr, Mu: mu, params: params, vel: make([][]float64, len(params))}
	for i, p := range params {
		m.vel[i] = make([]float64, p.Value.Size())
	}
	return m
}

// Step applies one momentum update.
func (m *Momentum) Step() {
	for i, p := range m.params {
		v := m.vel[i]
		w, g := p.Value.Data(), p.Grad.Data()
		for j := range w {
			v[j] = m.Mu*v[j] - m.LR*g[j]
			w[j] += v[j]
		}
	}
}

// Params returns the managed parameters.
func (m *Momentum) Params() []*nn.Param { return m.params }

// RMSProp keeps an exponential moving average of squared gradients and
// normalises the step by its square root.
type RMSProp struct {
	LR, Rho, Eps float64
	params       []*nn.Param
	ms           [][]float64
}

// NewRMSProp returns an RMSProp optimiser (ρ typically 0.9).
func NewRMSProp(params []*nn.Param, lr, rho float64) *RMSProp {
	r := &RMSProp{LR: lr, Rho: rho, Eps: 1e-8, params: params, ms: make([][]float64, len(params))}
	for i, p := range params {
		r.ms[i] = make([]float64, p.Value.Size())
	}
	return r
}

// Step applies one RMSProp update.
func (r *RMSProp) Step() {
	for i, p := range r.params {
		ms := r.ms[i]
		w, g := p.Value.Data(), p.Grad.Data()
		for j := range w {
			ms[j] = r.Rho*ms[j] + (1-r.Rho)*g[j]*g[j]
			w[j] -= r.LR * g[j] / (math.Sqrt(ms[j]) + r.Eps)
		}
	}
}

// Params returns the managed parameters.
func (r *RMSProp) Params() []*nn.Param { return r.params }

// Adam is the paper's optimiser: bias-corrected first and second moment
// estimates with per-coordinate step sizes (Kingma & Ba, 2015).
type Adam struct {
	LR, Beta1, Beta2, Eps float64
	params                []*nn.Param
	m, v                  [][]float64
	t                     int
}

// NewAdam returns an Adam optimiser with the paper's hyper-parameters as
// defaults when lr, beta1, beta2 are given as 0.001, 0.9, 0.999.
func NewAdam(params []*nn.Param, lr, beta1, beta2 float64) *Adam {
	a := &Adam{
		LR: lr, Beta1: beta1, Beta2: beta2, Eps: 1e-8,
		params: params,
		m:      make([][]float64, len(params)),
		v:      make([][]float64, len(params)),
	}
	for i, p := range params {
		a.m[i] = make([]float64, p.Value.Size())
		a.v[i] = make([]float64, p.Value.Size())
	}
	return a
}

// NewAdamPaper returns Adam with exactly the configuration reported in the
// paper's training section: lr = 0.001, β₁ = 0.9, β₂ = 0.999.
func NewAdamPaper(params []*nn.Param) *Adam { return NewAdam(params, 0.001, 0.9, 0.999) }

// Step applies one bias-corrected Adam update.
func (a *Adam) Step() {
	a.t++
	c1 := 1 - math.Pow(a.Beta1, float64(a.t))
	c2 := 1 - math.Pow(a.Beta2, float64(a.t))
	for i, p := range a.params {
		m, v := a.m[i], a.v[i]
		w, g := p.Value.Data(), p.Grad.Data()
		for j := range w {
			m[j] = a.Beta1*m[j] + (1-a.Beta1)*g[j]
			v[j] = a.Beta2*v[j] + (1-a.Beta2)*g[j]*g[j]
			mHat := m[j] / c1
			vHat := v[j] / c2
			w[j] -= a.LR * mHat / (math.Sqrt(vHat) + a.Eps)
		}
	}
}

// Params returns the managed parameters.
func (a *Adam) Params() []*nn.Param { return a.params }

// StepCount returns the number of updates applied so far.
func (a *Adam) StepCount() int { return a.t }

// SetStepCount overrides the update counter — the bias-correction clock —
// when the optimiser is restored from a checkpoint.
func (a *Adam) SetStepCount(t int) {
	if t < 0 {
		t = 0
	}
	a.t = t
}

// Moments returns the live first/second moment buffers of parameter i
// (the same slices the optimiser updates, not copies). Checkpointing
// reads them; restoring writes into them.
func (a *Adam) Moments(i int) (m, v []float64) { return a.m[i], a.v[i] }
