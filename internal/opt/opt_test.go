package opt

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/nn"
	"repro/internal/tensor"
)

// quadParam builds a single scalar parameter initialised at x0; the test
// loss is f(w) = w², whose gradient 2w we set manually each step.
func quadParam(x0 float64) *nn.Param {
	return nn.NewParam("w", tensor.FromSlice([]float64{x0}, 1))
}

func runQuadratic(o Optimizer, p *nn.Param, steps int) float64 {
	for i := 0; i < steps; i++ {
		p.ZeroGrad()
		p.Grad.Data()[0] = 2 * p.Value.Data()[0]
		o.Step()
	}
	return p.Value.Data()[0]
}

func TestSGDConvergesOnQuadratic(t *testing.T) {
	p := quadParam(5)
	if w := runQuadratic(NewSGD([]*nn.Param{p}, 0.1), p, 100); math.Abs(w) > 1e-6 {
		t.Fatalf("SGD stalled at %g", w)
	}
}

func TestSGDKnownStep(t *testing.T) {
	p := quadParam(1)
	s := NewSGD([]*nn.Param{p}, 0.5)
	p.Grad.Data()[0] = 2 // gradient of w² at 1
	s.Step()
	if got := p.Value.Data()[0]; got != 0 {
		t.Fatalf("after one step w = %g, want 0", got)
	}
}

func TestMomentumConvergesOnQuadratic(t *testing.T) {
	p := quadParam(5)
	if w := runQuadratic(NewMomentum([]*nn.Param{p}, 0.05, 0.9), p, 300); math.Abs(w) > 1e-6 {
		t.Fatalf("momentum stalled at %g", w)
	}
}

func TestMomentumFasterThanSGDOnIllConditioned(t *testing.T) {
	// On f(w) = 0.01·w² plain SGD with the same lr crawls; momentum should
	// make strictly more progress from the same start.
	run := func(o Optimizer, p *nn.Param) float64 {
		for i := 0; i < 200; i++ {
			p.ZeroGrad()
			p.Grad.Data()[0] = 0.02 * p.Value.Data()[0]
			o.Step()
		}
		return math.Abs(p.Value.Data()[0])
	}
	ps := quadParam(10)
	pm := quadParam(10)
	sgd := run(NewSGD([]*nn.Param{ps}, 0.1), ps)
	mom := run(NewMomentum([]*nn.Param{pm}, 0.1, 0.9), pm)
	if mom >= sgd {
		t.Fatalf("momentum (%g) not faster than SGD (%g)", mom, sgd)
	}
}

func TestRMSPropConvergesOnQuadratic(t *testing.T) {
	// RMSProp's normalised step has magnitude ≈ lr near the optimum, so it
	// settles into a limit cycle of that radius rather than converging
	// exactly; assert it reaches that basin.
	const lr = 0.05
	p := quadParam(5)
	if w := runQuadratic(NewRMSProp([]*nn.Param{p}, lr, 0.9), p, 500); math.Abs(w) > lr {
		t.Fatalf("RMSProp stalled at %g, want within %g of 0", w, lr)
	}
}

func TestAdamConvergesOnQuadratic(t *testing.T) {
	// Like RMSProp, Adam's per-step displacement is bounded by ≈ lr, so from
	// w=5 it needs ≥ 5/lr steps and then oscillates within ~lr of optimum.
	const lr = 0.01
	p := quadParam(5)
	if w := runQuadratic(NewAdam([]*nn.Param{p}, lr, 0.9, 0.999), p, 2000); math.Abs(w) > lr {
		t.Fatalf("Adam stalled at %g, want within %g of 0", w, lr)
	}
}

func TestAdamFirstStepIsLR(t *testing.T) {
	// With bias correction, the very first Adam step has magnitude ≈ lr
	// regardless of gradient scale.
	for _, g := range []float64{1e-4, 1, 1e4} {
		p := quadParam(0)
		a := NewAdam([]*nn.Param{p}, 0.001, 0.9, 0.999)
		p.Grad.Data()[0] = g
		a.Step()
		if got := math.Abs(p.Value.Data()[0]); math.Abs(got-0.001) > 1e-5 {
			t.Fatalf("first Adam step for g=%g moved %g, want ≈0.001", g, got)
		}
	}
}

func TestAdamStepCount(t *testing.T) {
	p := quadParam(1)
	a := NewAdamPaper([]*nn.Param{p})
	for i := 0; i < 7; i++ {
		a.Step()
	}
	if a.StepCount() != 7 {
		t.Fatalf("StepCount = %d, want 7", a.StepCount())
	}
}

func TestOptimizersTrainTinyRegression(t *testing.T) {
	// End-to-end sanity: each optimiser must fit y = 2x - 1 with a linear
	// model to low loss.
	build := func() (*nn.Dense, *tensor.Tensor, *tensor.Tensor) {
		rng := rand.New(rand.NewSource(42))
		d := nn.NewDense(rng, 1, 1)
		xs := tensor.RandUniform(rng, -1, 1, 32, 1)
		ys := tensor.Apply(xs, func(v float64) float64 { return 2*v - 1 })
		return d, xs, ys
	}
	cases := []struct {
		name  string
		mk    func(ps []*nn.Param) Optimizer
		steps int
		tol   float64
	}{
		{"sgd", func(ps []*nn.Param) Optimizer { return NewSGD(ps, 0.3) }, 300, 1e-4},
		{"momentum", func(ps []*nn.Param) Optimizer { return NewMomentum(ps, 0.1, 0.9) }, 300, 1e-4},
		{"rmsprop", func(ps []*nn.Param) Optimizer { return NewRMSProp(ps, 0.05, 0.9) }, 500, 1e-3},
		{"adam", func(ps []*nn.Param) Optimizer { return NewAdam(ps, 0.05, 0.9, 0.999) }, 500, 1e-3},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			model, xs, ys := build()
			o := tc.mk(model.Params())
			var loss float64
			for i := 0; i < tc.steps; i++ {
				nn.ZeroGrads(model.Params())
				pred := model.Forward(xs)
				var grad *tensor.Tensor
				loss, grad = nn.MSE(pred, ys)
				model.Backward(grad)
				o.Step()
			}
			if loss > tc.tol {
				t.Fatalf("%s final loss %g > %g", tc.name, loss, tc.tol)
			}
		})
	}
}
