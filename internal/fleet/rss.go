package fleet

import (
	"os"
	"runtime"
	"strconv"
	"strings"
)

// peakRSSMB reads the process's high-water resident set (VmHWM) from
// /proc/self/status. On platforms without procfs it falls back to the
// Go runtime's Sys counter — an upper bound on memory obtained from the
// OS, not a true peak RSS, but comparable run to run.
func peakRSSMB() float64 {
	if data, err := os.ReadFile("/proc/self/status"); err == nil {
		for _, line := range strings.Split(string(data), "\n") {
			if !strings.HasPrefix(line, "VmHWM:") {
				continue
			}
			f := strings.Fields(line)
			if len(f) >= 2 {
				if kb, err := strconv.ParseFloat(f[1], 64); err == nil {
					return kb / 1024
				}
			}
		}
	}
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return float64(ms.Sys) / (1 << 20)
}
