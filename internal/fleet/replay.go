package fleet

import (
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"

	"repro/internal/dataset"
	"repro/internal/split"
	"repro/internal/transport"
)

// Replay load generation — the clone end of the load spectrum, shared
// with the saturation benchmark (`mmsl bench -serve`). One real UE
// session is recorded per seed, and each benchmark UE answers the
// server's requests with the recorded activation frames verbatim:
// because the server's request sequence is deterministic per seed, the
// replayed bytes are exactly what a live UE would have sent, and the
// UE side costs a frame read plus a memcpy-sized write. The fleet
// drivers (driver.go) are the opposite end — full live UE halves.

// MemoProvision memoises transport.SessionEnv per seed so N same-seed
// sessions provision one shared (read-only) dataset instead of N copies
// and the benchmark clock never includes dataset synthesis.
func MemoProvision() transport.Provision {
	type env struct {
		cfg split.Config
		d   *dataset.Dataset
		sp  *dataset.Split
		err error
	}
	var mu sync.Mutex
	cache := map[int64]*env{}
	return func(h transport.Hello) (split.Config, *dataset.Dataset, *dataset.Split, error) {
		mu.Lock()
		defer mu.Unlock()
		e, ok := cache[h.Seed]
		if !ok {
			e = &env{}
			e.cfg, e.d, e.sp, e.err = transport.SessionEnv(h)
			cache[h.Seed] = e
		}
		return e.cfg, e.d, e.sp, e.err
	}
}

// GateProvision delays every provision until n handshakes are in
// flight, so all benchmark sessions start their rounds together.
func GateProvision(n int, inner transport.Provision) transport.Provision {
	gate := make(chan struct{})
	var joined atomic.Int32
	return func(h transport.Hello) (split.Config, *dataset.Dataset, *dataset.Split, error) {
		if joined.Add(1) == int32(n) {
			close(gate)
		}
		<-gate
		return inner(h)
	}
}

// frameTap records every Write as one frame (the frame path issues
// exactly one Write per frame).
type frameTap struct {
	inner  io.ReadWriter
	frames [][]byte
}

func (t *frameTap) Read(p []byte) (int, error) { return t.inner.Read(p) }

func (t *frameTap) Write(p []byte) (int, error) {
	t.frames = append(t.frames, append([]byte(nil), p...))
	return t.inner.Write(p)
}

// RecordTrajectory runs one real UE session against a serial server and
// captures the UE→BS activation frames in order.
func RecordTrajectory(prov transport.Provision, h transport.Hello, steps int) ([][]byte, error) {
	srv, err := transport.NewBSServer(transport.ServerConfig{
		MaxUE: 1, Sched: transport.SchedAsync, Steps: steps,
		EvalEvery: 1 << 30, ValAnchors: 16, Provision: prov,
	})
	if err != nil {
		return nil, err
	}
	cfg, d, _, err := prov(h)
	if err != nil {
		return nil, err
	}
	h.ConfigFP = cfg.Fingerprint()
	ueConn, bsConn := net.Pipe()
	defer ueConn.Close()
	done := make(chan error, 1)
	go func() { done <- srv.Handle(bsConn) }()
	if _, err := transport.JoinSession(ueConn, h); err != nil {
		return nil, err
	}
	tap := &frameTap{inner: ueConn}
	ue, err := transport.NewUEPeer(cfg, d, tap)
	if err != nil {
		return nil, err
	}
	if err := ue.Serve(); err != nil {
		return nil, err
	}
	if err := <-done; err != nil {
		return nil, err
	}
	return tap.frames, nil
}

// ReplayUE serves one benchmark session: join, then answer every
// forward-pass request with the next recorded activation frame.
func ReplayUE(conn io.ReadWriteCloser, h transport.Hello, frames [][]byte) error {
	defer conn.Close()
	if _, err := transport.JoinSession(conn, h); err != nil {
		return err
	}
	fr := transport.NewFrameReader(conn)
	defer fr.Release()
	next := 0
	for {
		hdr, _, err := fr.ReadFrame()
		if err != nil {
			return err
		}
		switch hdr.Type {
		case transport.MsgShutdown:
			return nil
		case transport.MsgBatchRequest, transport.MsgEvalRequest:
			if next >= len(frames) {
				return fmt.Errorf("fleet: replay exhausted after %d frames", next)
			}
			if _, err := conn.Write(frames[next]); err != nil {
				return err
			}
			next++
		case transport.MsgCutGradient, transport.MsgCheckpoint:
			// absorbed: the recording already accounted for the model
			// trajectory these induce on a live UE.
		default:
			return fmt.Errorf("fleet: replay UE got unexpected %v", hdr.Type)
		}
	}
}
