package fleet

import (
	"fmt"
	"math/rand"

	"repro/internal/dataset"
	"repro/internal/scene"
	"repro/internal/split"
	"repro/internal/transport"
)

// Session-environment materialisation. Datasets are the expensive part
// of a 10k-UE fleet, so they are built once per scene class and shared
// read-only by every UE of that class — heterogeneity across classes,
// aliasing within one. Config fingerprints stay mixed regardless: each
// UE's private seed enters its fingerprint, so two same-class UEs are
// still never clone-shareable.

// Fleet sessions use a deliberately tiny model/data shape (8×8 images,
// short sequences, small hidden state) so one host can sustain
// thousands of concurrent live sessions; the serving path under test is
// shape-agnostic.
const (
	fleetImageHW = 8
	fleetFocalPx = 5
	fleetSeqLen  = 2
	fleetHorizon = 2
	fleetBatch   = 4
	fleetHidden  = 6
)

// Env holds a fleet's materialised session environments: the per-class
// datasets/splits and the per-UE profiles, plus the Provision the
// in-process BSServer uses to provision each session from its hello.
type Env struct {
	Spec     Spec // defaulted
	Profiles []Profile

	classes []*classEnv
	byID    map[string]*Profile
}

type classEnv struct {
	scene scene.Config
	d     *dataset.Dataset
	sp    *dataset.Split
}

// NewEnv generates the profiles and builds every scene class's dataset.
func NewEnv(spec Spec) (*Env, error) {
	spec = spec.withDefaults()
	e := &Env{
		Spec:     spec,
		Profiles: spec.Profiles(),
		classes:  make([]*classEnv, spec.SceneClasses),
		byID:     make(map[string]*Profile, spec.UEs),
	}
	sw := scene.DefaultSweep()
	sw.Base.ImageH, sw.Base.ImageW = fleetImageHW, fleetImageHW
	sw.Base.FocalPixels = fleetFocalPx
	for c := range e.classes {
		crng := rand.New(rand.NewSource(int64(mix64(uint64(spec.Seed)*0x9e3779b97f4a7c15 ^ uint64(c) + 0x5eed))))
		sc, err := sw.At(crng.Float64(), crng.Float64(), crng.Float64())
		if err != nil {
			return nil, fmt.Errorf("fleet: scene class %d: %w", c, err)
		}
		gen := dataset.DefaultGenConfig()
		gen.Scene = sc
		gen.NumFrames = spec.Frames
		gen.Seed = spec.Seed + 7919*int64(c) + 3
		d, err := dataset.Generate(gen)
		if err != nil {
			return nil, fmt.Errorf("fleet: dataset for class %d: %w", c, err)
		}
		sp, err := dataset.NewSplit(d, fleetSeqLen, fleetHorizon, d.Len()*3/4)
		if err != nil {
			return nil, fmt.Errorf("fleet: split for class %d: %w", c, err)
		}
		e.classes[c] = &classEnv{scene: sc, d: d, sp: sp}
	}
	for i := range e.Profiles {
		p := &e.Profiles[i]
		e.byID[p.SessionID] = p
	}
	return e, nil
}

// Config derives a profile's split configuration — the UE-side and
// server-side halves must agree on it, which the fingerprint in the
// hello enforces.
func (e *Env) Config(p Profile) split.Config {
	cfg := split.DefaultConfig(p.Modality, p.Pool)
	cfg.Seed = p.Seed
	cfg.SeqLen, cfg.HorizonFrames, cfg.BatchSize, cfg.HiddenSize =
		fleetSeqLen, fleetHorizon, fleetBatch, fleetHidden
	cfg.Codec = p.Codec
	return cfg
}

// Dataset returns the (shared, read-only) dataset of a profile's class.
func (e *Env) Dataset(p Profile) *dataset.Dataset { return e.classes[p.SceneClass].d }

// Hello builds the session hello a profile dials with, fingerprint
// included.
func (e *Env) Hello(p Profile) transport.Hello {
	cfg := e.Config(p)
	return transport.Hello{
		SessionID: p.SessionID,
		Seed:      p.Seed,
		Frames:    uint32(e.Spec.Frames),
		Pool:      uint16(p.Pool),
		Modality:  uint8(p.Modality),
		Codec:     uint8(p.Codec),
		ConfigFP:  cfg.Fingerprint(),
	}
}

// Provision is the BSServer session factory: it resolves the hello's
// session id to its fleet profile and hands back the class's shared
// dataset with the profile's private config. Unknown ids are refused —
// a fleet server serves its fleet, nothing else.
func (e *Env) Provision() transport.Provision {
	return func(h transport.Hello) (split.Config, *dataset.Dataset, *dataset.Split, error) {
		p, ok := e.byID[h.SessionID]
		if !ok {
			return split.Config{}, nil, nil, fmt.Errorf("fleet: unknown session %q", h.SessionID)
		}
		cls := e.classes[p.SceneClass]
		return e.Config(*p), cls.d, cls.sp, nil
	}
}
