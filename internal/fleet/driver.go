package fleet

import (
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"sync"
	"time"

	"repro/internal/channel"
	"repro/internal/compress"
	"repro/internal/radio"
	"repro/internal/transport"
)

// Per-UE load-generator state machines. Every driver runs real protocol
// sessions — handshake, live CNN half, checkpoints — over net.Pipe
// against the shared in-process BSServer; churn is expressed through
// byte-budget faults (FaultConn) and request-count triggers, never
// wall-clock ones, so a profile misbehaves at the same protocol point
// in every run.

// errStopServing is the churn trigger: a UE that returns it from its
// request hook abandons the round mid-flight but keeps its connection
// open — the wedged-client shape only the idle timeout or a
// supersede-on-rejoin can clear.
var errStopServing = errors.New("fleet: UE stopped serving (churn trigger)")

type driver struct {
	env      *Env
	p        Profile
	handle   func(io.ReadWriteCloser) error
	handlers *sync.WaitGroup

	think func(t transport.MsgType, step uint32) error
}

// newDriver builds one UE driver. handle serves the BS end of each
// incarnation's pipe — BSServer.Handle against a single server, the
// coordinator's HandleConn in a replica fleet; the driver cannot tell
// the difference, which is the point.
func newDriver(env *Env, p Profile, handle func(io.ReadWriteCloser) error, handlers *sync.WaitGroup) *driver {
	dr := &driver{env: env, p: p, handle: handle, handlers: handlers}
	dr.think = dr.newThink()
	return dr
}

// newThink builds the per-request think-time hook: the profile's local
// compute time plus a geometric retransmission delay drawn from its
// Nakagami uplink (blockage folded into the link budget). One scaled
// slot is 1µs — the paper's is 1ms — so a deep fade shapes the round
// latency distribution without the soak taking paper-real time.
func (dr *driver) newThink() func(transport.MsgType, uint32) error {
	const maxSlots = 2000.0
	cfg := dr.env.Config(dr.p)
	bits := cfg.UplinkPayloadBits(dr.env.Dataset(dr.p))
	budget := radio.PaperUplink()
	budget.TxPowerDBm -= dr.p.BlockageDB
	rng := rand.New(rand.NewSource(dr.p.Seed + 0x77))
	mean := 1.0 // expected slots per delivery
	if ch, err := channel.NewNakagami(budget, radio.PaperSlotSeconds, dr.p.FadingM, rng); err == nil {
		mean = ch.ExpectedSlots(bits)
	}
	if !(mean >= 1) || mean > maxSlots { // deep fade (or NaN/Inf): clamp
		mean = maxSlots
	}
	return func(t transport.MsgType, _ uint32) error {
		if t != transport.MsgBatchRequest && t != transport.MsgEvalRequest {
			return nil
		}
		slots := 1 + rng.ExpFloat64()*mean
		if slots > maxSlots {
			slots = maxSlots
		}
		time.Sleep(time.Duration(slots)*time.Microsecond + time.Duration(dr.p.ThinkNs))
		return nil
	}
}

// dial opens one incarnation: a fresh pipe whose server end is handled
// on its own goroutine. The returned channel closes when the server
// handler finishes — how churn drivers observe the eviction or
// supersede they provoked.
func (dr *driver) dial() (io.ReadWriteCloser, <-chan struct{}) {
	ueConn, bsConn := net.Pipe()
	done := make(chan struct{})
	dr.handlers.Add(1)
	go func() {
		defer dr.handlers.Done()
		defer close(done)
		_ = dr.handle(bsConn) // outcomes are counted via OnSessionEnd
	}()
	return ueConn, done
}

// run drives the profile's whole lifecycle and returns only unexpected
// errors — every churn behaviour's intended failure is absorbed, and so
// is a server-side disconnect: under saturation the server may evict
// any session whose round stalls past the idle timeout, which is its
// call to make, is already counted by the eviction hook, and is part of
// what a soak is for.
func (dr *driver) run() error {
	err := dr.runChurn()
	if err != nil && isDisconnect(err) {
		return nil
	}
	return err
}

func (dr *driver) runChurn() error {
	if !dr.env.Config(dr.p).Modality.UsesImages() {
		return dr.runRFOnly()
	}
	switch dr.p.Churn {
	case ChurnFlapping:
		return dr.runFlapping()
	case ChurnMidRoundDrop:
		return dr.runMidRoundDrop()
	case ChurnIdle:
		return dr.runIdle()
	case ChurnSupersede:
		return dr.runSupersede()
	default:
		return dr.runSteady()
	}
}

// isDisconnect reports whether the error chain bottoms out in the peer
// tearing the connection down.
func isDisconnect(err error) bool {
	return transport.IsClosedConn(err) || errors.Is(err, io.ErrUnexpectedEOF) || errors.Is(err, net.ErrClosed)
}

// session builds the reconnecting UE session shared by the steady and
// flapping behaviours.
func (dr *driver) session() *transport.UESession {
	bo := transport.Backoff{Base: time.Millisecond, Max: 50 * time.Millisecond, Retries: 8}
	if dr.env.Spec.Chaos {
		// Crash failover severs the relay without an ack and parks the
		// reconnect at the migration barrier until the session settles on
		// a survivor — give chaos-run UEs a reconnect budget that outlasts
		// detection plus recovery, so a mid-round kill is a resume, not a
		// driver error.
		bo = transport.Backoff{Base: 2 * time.Millisecond, Max: 250 * time.Millisecond, Retries: 40}
	}
	return &transport.UESession{
		Hello:     dr.env.Hello(dr.p),
		Cfg:       dr.env.Config(dr.p),
		Data:      dr.env.Dataset(dr.p),
		Backoff:   bo,
		OnRequest: dr.think,
	}
}

func (dr *driver) runSteady() error {
	return dr.session().Run(func() (io.ReadWriteCloser, error) {
		conn, _ := dr.dial()
		return conn, nil
	})
}

// runRFOnly absorbs control frames until shutdown: an RF-only session
// trains entirely on the BS, so the UE's only protocol duty is to stay
// joined.
func (dr *driver) runRFOnly() error {
	conn, _ := dr.dial()
	defer conn.Close()
	if _, err := transport.JoinSession(conn, dr.env.Hello(dr.p)); err != nil {
		return err
	}
	fr := transport.NewFrameReader(conn)
	defer fr.Release()
	for {
		msg, err := fr.ReadMessage()
		if err != nil {
			return fmt.Errorf("fleet: RF-only UE read: %w", err)
		}
		switch msg.Type {
		case transport.MsgShutdown:
			return nil
		case transport.MsgCheckpoint:
			// nothing to persist: the UE half is empty
		default:
			return fmt.Errorf("fleet: RF-only UE got unexpected %v", msg.Type)
		}
	}
}

// uplinkFrameBytes estimates one activation frame's wire size for this
// profile, so cut budgets land mid-run for every codec/pool combination
// instead of outliving small-payload sessions.
func (dr *driver) uplinkFrameBytes() int64 {
	cfg := dr.env.Config(dr.p)
	d := dr.env.Dataset(dr.p)
	els := int64(cfg.BatchSize*cfg.SeqLen) * int64((d.H/cfg.PoolH)*(d.W/cfg.PoolW))
	per := int64(8)
	switch dr.p.Codec {
	case compress.CodecFloat16:
		per = 2
	case compress.CodecQuantInt8:
		per = 1
	}
	return els*per + 64
}

// cutBudget is the uplink byte budget of fault incarnation number mult
// (1-based): the handshake, then a profile-determined number of whole
// rounds, then half a frame — a ragged mid-upload cut.
func (dr *driver) cutBudget(mult int64) int64 {
	frame := dr.uplinkFrameBytes()
	rounds := 1 + dr.p.CutBytes%int64(dr.env.Spec.Steps)
	return 256 + mult*rounds*frame + frame/2
}

// runFlapping reconnects through FaultConn cuts, each incarnation's
// budget reaching further; after two cuts the link stays up and the
// session runs to clean detach (resuming from checkpoints when the
// spec enables them).
func (dr *driver) runFlapping() error {
	cuts := int64(0)
	return dr.session().Run(func() (io.ReadWriteCloser, error) {
		conn, _ := dr.dial()
		if cuts < 2 {
			cuts++
			return transport.NewFaultConn(conn, -1, dr.cutBudget(cuts)), nil
		}
		return conn, nil
	})
}

// runMidRoundDrop dies mid-activation-upload and never comes back: the
// server sees a truncated frame and fails the session (a drop, not an
// eviction).
func (dr *driver) runMidRoundDrop() error {
	conn, hdone := dr.dial()
	defer conn.Close()
	fc := transport.NewFaultConn(conn, -1, dr.cutBudget(1))
	if _, err := transport.JoinSession(fc, dr.env.Hello(dr.p)); err != nil {
		return err
	}
	ue, err := transport.NewUEPeer(dr.env.Config(dr.p), dr.env.Dataset(dr.p), fc)
	if err != nil {
		return err
	}
	ue.OnRequest = dr.think
	serr := ue.Serve()
	<-hdone
	if serr != nil && !errors.Is(serr, transport.ErrInjectedFault) && !transport.IsClosedConn(serr) {
		return serr
	}
	return nil
}

// stopAfter wraps the think hook with a request-count trigger: the UE
// answers `rounds` forward-pass requests, then abandons the next one.
func (dr *driver) stopAfter(rounds int) func(transport.MsgType, uint32) error {
	served := 0
	return func(t transport.MsgType, step uint32) error {
		if t == transport.MsgBatchRequest || t == transport.MsgEvalRequest {
			served++
			if served > rounds {
				return errStopServing
			}
		}
		return dr.think(t, step)
	}
}

// serveWedged runs one incarnation that answers TriggerRound rounds and
// then wedges — stops serving with the connection held open — returning
// the conn and the handler-done channel for the caller to dispose of.
func (dr *driver) serveWedged() (io.ReadWriteCloser, <-chan struct{}, error) {
	conn, hdone := dr.dial()
	if _, err := transport.JoinSession(conn, dr.env.Hello(dr.p)); err != nil {
		conn.Close()
		return nil, nil, err
	}
	ue, err := transport.NewUEPeer(dr.env.Config(dr.p), dr.env.Dataset(dr.p), conn)
	if err != nil {
		conn.Close()
		return nil, nil, err
	}
	ue.OnRequest = dr.stopAfter(dr.p.TriggerRound)
	if serr := ue.Serve(); serr != nil && !errors.Is(serr, errStopServing) && !transport.IsClosedConn(serr) {
		conn.Close()
		<-hdone
		return nil, nil, serr
	}
	return conn, hdone, nil
}

// runIdle wedges and waits: the server's idle timeout must evict the
// session and free its slot while the dead-but-connected UE holds on.
func (dr *driver) runIdle() error {
	conn, hdone, err := dr.serveWedged()
	if err != nil {
		return err
	}
	<-hdone // the idle timeout fired and the session was evicted
	conn.Close()
	return nil
}

// runSupersede wedges, then immediately rejoins on a fresh connection
// with the same session id: the server fences the wedged incarnation
// off (supersede-on-rejoin) instead of waiting out the idle timeout,
// and the second incarnation trains to completion.
func (dr *driver) runSupersede() error {
	connA, hdoneA, err := dr.serveWedged()
	if err != nil {
		return err
	}
	connB, _ := dr.dial()
	defer connB.Close()
	if _, err := transport.JoinSession(connB, dr.env.Hello(dr.p)); err != nil {
		connA.Close()
		<-hdoneA
		return err
	}
	ueB, err := transport.NewUEPeer(dr.env.Config(dr.p), dr.env.Dataset(dr.p), connB)
	if err != nil {
		connA.Close()
		<-hdoneA
		return err
	}
	ueB.OnRequest = dr.think
	berr := ueB.Serve()
	<-hdoneA // the rejoin closed A's server end and retired it as superseded
	connA.Close()
	return berr
}
