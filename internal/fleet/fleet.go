// Package fleet is the heterogeneous-UE load model for the multi-UE
// base station: a deterministic generator of synthetic UE profiles and
// a soak runner that drives them — as real protocol sessions, not
// replayed clones — against an in-process BSServer.
//
// The saturation benchmark (cmd/mmsl serve_bench) measures the
// friendliest possible load: N clones of one recorded session, every
// round fingerprint-equal and shareable. A deployed base station sees
// the opposite — independent UEs with different corridors (non-IID
// datasets via scene parameter sweeps), different modalities, codecs
// and pooling widths (mixed config fingerprints, so cross-session
// sharing finds nothing), different channel quality (blockage and
// Nakagami fading shaping per-round think time), and churn: flapping
// reconnects, mid-round drops, idling until evicted, and
// supersede-on-rejoin. This package is that honest adversarial load,
// and the harness every scaling PR benchmarks against.
//
// Everything derives deterministically from Spec.Seed: the same spec
// produces a byte-identical profile set, and — because per-session
// training is deterministic and round sharing is proven bit-exact
// before use — identical per-UE final metrics across runs and across
// tensor worker counts (the fleet extension of invariants 6–8).
package fleet

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/compress"
	"repro/internal/coord"
	"repro/internal/split"
	"repro/internal/transport"
)

// Churn is a UE's connection-lifecycle behaviour over its session.
type Churn int

// Churn behaviours. Only image-bearing UEs churn: an RF-only session
// never blocks the server on its UE, so cutting or stalling its uplink
// exercises nothing.
const (
	// ChurnSteady serves every request until clean shutdown.
	ChurnSteady Churn = iota
	// ChurnFlapping cuts its own uplink mid-frame (FaultConn) and
	// reconnects with backoff, resuming from the last checkpoint when
	// checkpointing is enabled; after two cuts it stays up.
	ChurnFlapping
	// ChurnMidRoundDrop cuts its uplink mid-activation-upload once and
	// never returns — the session fails on the server's read.
	ChurnMidRoundDrop
	// ChurnIdle answers a few rounds, then holds the connection open and
	// stops responding until the server's idle timeout evicts it.
	ChurnIdle
	// ChurnSupersede stops responding like ChurnIdle, but immediately
	// rejoins on a fresh connection with the same session id, fencing
	// the wedged incarnation off via supersede-on-rejoin.
	ChurnSupersede

	numChurn
)

// String names the churn behaviour.
func (c Churn) String() string {
	switch c {
	case ChurnSteady:
		return "steady"
	case ChurnFlapping:
		return "flapping"
	case ChurnMidRoundDrop:
		return "mid-round-drop"
	case ChurnIdle:
		return "idle"
	case ChurnSupersede:
		return "supersede"
	}
	return fmt.Sprintf("Churn(%d)", int(c))
}

// Profile is one synthetic UE: everything the driver needs to dial,
// provision and misbehave deterministically.
type Profile struct {
	Index     int    `json:"index"`
	SessionID string `json:"session_id"`

	// Seed is the UE's private model/config seed: distinct per UE, so
	// config fingerprints are mixed and clone sharing finds nothing.
	Seed int64 `json:"seed"`

	// SceneClass indexes the spec's corridor-sweep grid: UEs of one
	// class share a (read-only) dataset, UEs of different classes train
	// non-IID.
	SceneClass int `json:"scene_class"`

	Modality split.Modality `json:"modality"`
	Codec    compress.ID    `json:"codec"`
	Pool     int            `json:"pool"`

	// Channel quality: Nakagami fading shape and a static blockage loss
	// applied to the uplink budget. Together they set the per-round
	// transmission delay the driver models as think time.
	FadingM    float64 `json:"fading_m"`
	BlockageDB float64 `json:"blockage_db"`

	// ThinkNs is the UE's per-request local compute time; HeavyTail
	// marks the straggler decile whose think time is an order of
	// magnitude above the band.
	ThinkNs   int64 `json:"think_ns"`
	HeavyTail bool  `json:"heavy_tail"`

	Churn Churn `json:"churn"`

	// CutBytes is the uplink write budget before a flapping/mid-round
	// fault trips (per incarnation, growing for flapping UEs).
	CutBytes int64 `json:"cut_bytes"`

	// TriggerRound is the number of rounds an idle/supersede UE answers
	// before it stops responding.
	TriggerRound int `json:"trigger_round"`
}

// Spec configures a fleet. Zero values take the documented defaults;
// every derived quantity — profiles, datasets, configs — is a pure
// function of the spec, so two runs of the same spec are comparable
// round for round.
type Spec struct {
	UEs   int   // fleet size (≤0: 64)
	Seed  int64 // master seed for profiles, scenes and datasets
	Steps int   // training steps per session (≤0: 6)

	SceneClasses int // distinct corridor/dataset classes (≤0: min(64, UEs))
	Frames       int // frames per class dataset (≤0: 240)

	// ChurnFraction is the probability that an image-bearing UE gets a
	// non-steady churn behaviour (clamped to [0, 1]).
	ChurnFraction float64

	BatchWindow time.Duration // batched-path coalescing window (≤0: 2ms)
	BatchMax    int           // rounds per dispatch (≤0: 16)
	IdleTimeout time.Duration // server idle eviction (≤0: 500ms)
	Checkpoint  bool          // enable checkpoint/resume (flapping UEs resume)
	Retain      int           // finished-snapshot retention ring (≤0: 128)

	// Replicas > 1 shards the soak across that many BS replicas behind a
	// coordinator (internal/coord): sessions are placed by affinity/load,
	// and a handover drill live-migrates sessions between replicas for
	// the whole soak. Each replica gets its own in-memory checkpoint
	// store (migration needs checkpoints), so resume is implicitly on.
	// ≤1 keeps the single-server path byte-identical to before.
	Replicas int

	// RebalanceEvery is the handover drill cadence in a replica fleet
	// (≤0: 5ms). Each tick attempts a load-based rebalance and falls
	// back to a forced round-robin handover of one migration-eligible
	// session, so handover traffic is sustained even on a balanced
	// fleet.
	RebalanceEvery time.Duration

	// Chaos (needs Replicas > 1) runs the crash-failover drill on top of
	// the churn load: every replica is rebuilt on a durable journal
	// store behind a fault-injecting filesystem, a failure detector
	// probes the fleet, and a drill goroutine kills replicas uncontrolled
	// mid-round — tearing the in-flight store write on the way down —
	// waits out coordinator crash failover, then rejoins the replica as
	// a fresh incarnation adopting from its store. The soak's Report
	// gains the Failover section (MTTR and the recovered/lost ledger).
	Chaos bool

	// ChaosInterval is the pause between chaos drill actions — kill,
	// stall, rejoin cycles (≤0: 100ms).
	ChaosInterval time.Duration

	// WallLimit aborts a wedged soak (≤0: 10min) — the deadline that
	// turns a deadlock or an unevictable session into a test failure
	// instead of a hung run.
	WallLimit time.Duration

	// OnServer, when set, observes each of the soak's BSServers right
	// after it is built and before any UE joins — the mount point for
	// the control plane (internal/control) without this package
	// importing it. Tests also use it to scrape /metrics concurrently
	// with the churn load. In a replica fleet it runs once per replica.
	OnServer func(*transport.BSServer) `json:"-"`

	// OnCoordinator observes the replica fleet's coordinator the same
	// way (only called when Replicas > 1).
	OnCoordinator func(*coord.Coordinator) `json:"-"`
}

func (s Spec) withDefaults() Spec {
	if s.UEs <= 0 {
		s.UEs = 64
	}
	if s.Steps <= 0 {
		s.Steps = 6
	}
	if s.SceneClasses <= 0 {
		s.SceneClasses = s.UEs
		if s.SceneClasses > 64 {
			s.SceneClasses = 64
		}
	}
	if s.Frames <= 0 {
		s.Frames = 240
	}
	if s.ChurnFraction < 0 {
		s.ChurnFraction = 0
	} else if s.ChurnFraction > 1 {
		s.ChurnFraction = 1
	}
	if s.BatchWindow <= 0 {
		s.BatchWindow = 2 * time.Millisecond
	}
	if s.BatchMax <= 0 {
		s.BatchMax = 16
	}
	if s.IdleTimeout <= 0 {
		s.IdleTimeout = 500 * time.Millisecond
	}
	if s.Retain <= 0 {
		s.Retain = 128
	}
	if s.Replicas <= 0 {
		s.Replicas = 1
	}
	if s.RebalanceEvery <= 0 {
		s.RebalanceEvery = 5 * time.Millisecond
	}
	if s.ChaosInterval <= 0 {
		s.ChaosInterval = 100 * time.Millisecond
	}
	if s.WallLimit <= 0 {
		s.WallLimit = 10 * time.Minute
	}
	return s
}

// Profiles generates the fleet's UE profiles. Each profile draws from
// its own splitmix-derived substream, so profile i is a function of
// (Seed, SceneClasses, i) alone — stable under fleet resizing at a
// fixed class count and trivially byte-identical across runs.
func (s Spec) Profiles() []Profile {
	sp := s.withDefaults()
	out := make([]Profile, sp.UEs)
	for i := range out {
		out[i] = sp.profile(i)
	}
	return out
}

func (s Spec) profile(i int) Profile {
	rng := rand.New(rand.NewSource(int64(mix64(uint64(s.Seed) ^ (uint64(i)+1)*0x9e3779b97f4a7c15))))
	p := Profile{
		Index:     i,
		SessionID: fmt.Sprintf("fleet-%05d", i),
		Seed:      s.Seed + 1_000_003*int64(i) + 17,
	}
	// Fixed draw order keeps every field position-stable in the
	// substream: adding a field later appends a draw, never shifts one.
	p.SceneClass = rng.Intn(s.SceneClasses)
	switch m := rng.Float64(); {
	case m < 0.2:
		p.Modality = split.RFOnly
	case m < 0.4:
		p.Modality = split.ImageOnly
	default:
		p.Modality = split.ImageRF
	}
	p.Codec = []compress.ID{compress.CodecRaw, compress.CodecRaw, compress.CodecFloat16, compress.CodecQuantInt8}[rng.Intn(4)]
	p.Pool = []int{2, 4, 8}[rng.Intn(3)]
	p.FadingM = 0.6 + 1.9*rng.Float64()
	p.BlockageDB = 30 * rng.Float64() * rng.Float64() // skewed toward clear links
	p.ThinkNs = int64(50_000 + 150_000*rng.Float64())
	if rng.Float64() < 0.1 {
		p.HeavyTail = true
		p.ThinkNs *= 10
	}
	churnDraw := rng.Float64()
	kind := Churn(1 + rng.Intn(int(numChurn)-1))
	p.CutBytes = 2048 + rng.Int63n(8192)
	p.TriggerRound = 1 + rng.Intn(3)
	if churnDraw < s.ChurnFraction && p.Modality.UsesImages() {
		p.Churn = kind
	}
	return p
}

// mix64 is the splitmix64 finaliser: a bijective avalanche over the
// per-index stream seeds.
func mix64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}
