package fleet

import (
	"errors"
	"fmt"
	"io"
	"math"
	"net"
	"os"
	"sync"
	"time"

	"repro/internal/coord"
	"repro/internal/store"
	"repro/internal/transport"
)

// Outcome is the terminal record of one UE's session — its final
// incarnation's state and metrics, plus how often it resumed from a
// checkpoint along the way. Loss/RMSE are kept as raw float bits so the
// determinism suite compares exact values, not formatted ones.
type Outcome struct {
	State    string `json:"state"`
	Steps    int    `json:"steps"`
	LastLoss uint64 `json:"last_loss_bits"`
	LastRMSE uint64 `json:"last_rmse_bits"`
	Resumes  int    `json:"resumes"`
}

// HandoverReport measures the replica fleet's live-migration drill. It
// lands as the `handover` section under `fleet` in BENCH.json.
type HandoverReport struct {
	Replicas   int   `json:"replicas"`
	Migrations int64 `json:"migrations"` // completed handovers
	Failed     int64 `json:"failed"`     // attempts lost to races (session ended mid-selection)

	// MigratedEnds counts session incarnations retired with the
	// migrated disposition across all replicas — the server-side echo
	// of Migrations.
	MigratedEnds int `json:"migrated_incarnations"`

	P50Ms float64 `json:"latency_p50_ms"`
	P99Ms float64 `json:"latency_p99_ms"`
}

// Report is what a fleet soak measures. It lands as the `fleet` section
// of BENCH.json.
type Report struct {
	UEs          int     `json:"ues"`
	StepsPerUE   int     `json:"steps_per_ue"`
	SceneClasses int     `json:"scene_classes"`
	ChurnUEs     int     `json:"churn_ues"`
	ElapsedSec   float64 `json:"elapsed_sec"`

	// Rounds counts training rounds served; StepsPerSec is the
	// aggregate serving throughput over the whole soak.
	Rounds      int64   `json:"rounds"`
	StepsPerSec float64 `json:"agg_steps_per_sec"`
	P50Ms       float64 `json:"round_p50_ms"`
	P99Ms       float64 `json:"round_p99_ms"`

	// SharedRatio is the fraction of rounds served by a clone group's
	// shared computation — ≈0 expected under mixed fingerprints, which
	// is the point: the fleet is the anti-clone load.
	SharedRounds int64   `json:"shared_rounds"`
	SharedRatio  float64 `json:"shared_ratio"`

	// Lifecycle outcome counters, accumulated over every session
	// incarnation by the server's end-of-session hook.
	Completed  int `json:"completed"`
	Drops      int `json:"drops"`
	Evictions  int `json:"evictions"`
	Supersedes int `json:"supersedes"`
	Resumes    int `json:"resumes"`

	// DriverErrors counts UE drivers that ended on an error their churn
	// script did not call for — always 0 in a healthy soak.
	DriverErrors int `json:"driver_errors"`

	// LeakedSessions is the number of sessions still live after every
	// driver and handler finished — always 0 in a healthy soak.
	LeakedSessions    int     `json:"leaked_sessions"`
	RetainedSnapshots int     `json:"retained_snapshots"`
	EvictedSnapshots  int64   `json:"evicted_snapshots"`
	QueuePeak         int64   `json:"batch_queue_peak"`
	PeakRSSMB         float64 `json:"peak_rss_mb"`

	// Handover is present when the soak ran a replica fleet
	// (Spec.Replicas > 1).
	Handover *HandoverReport `json:"handover,omitempty"`

	// Final maps session id → its last incarnation's outcome: the
	// per-UE ground truth the determinism suite compares across runs
	// and worker counts. Excluded from BENCH.json.
	Final map[string]Outcome `json:"-"`
}

// Run executes one fleet soak: it materialises the spec's environment,
// starts the in-process BS fleet (one server, or Replicas servers
// behind a coordinator), drives every profile's state machine to its
// end, and reports. logf (optional) receives coarse progress.
func Run(spec Spec, logf func(format string, args ...any)) (*Report, error) {
	if logf == nil {
		logf = func(string, ...any) {}
	}
	env, err := NewEnv(spec)
	if err != nil {
		return nil, err
	}
	spec = env.Spec

	ckptDir := ""
	if spec.Checkpoint && spec.Replicas == 1 {
		ckptDir, err = os.MkdirTemp("", "mmsl-fleet-ckpt-*")
		if err != nil {
			return nil, fmt.Errorf("fleet: checkpoint dir: %w", err)
		}
		defer os.RemoveAll(ckptDir)
	}

	rep := &Report{
		UEs:          spec.UEs,
		StepsPerUE:   spec.Steps,
		SceneClasses: spec.SceneClasses,
		Final:        make(map[string]Outcome, spec.UEs),
	}
	for _, p := range env.Profiles {
		if p.Churn != ChurnSteady {
			rep.ChurnUEs++
		}
	}

	migratedEnds := 0
	var mu sync.Mutex
	onEnd := func(snap transport.SessionSnapshot, cause error) {
		mu.Lock()
		defer mu.Unlock()
		switch snap.State {
		case transport.SessionDetached:
			rep.Completed++
		case transport.SessionSuperseded:
			rep.Supersedes++
		case transport.SessionFailed:
			switch {
			case errors.Is(cause, transport.ErrIdleTimeout):
				rep.Evictions++
			case errors.Is(cause, transport.ErrMigrated):
				// A handover, not a failure: the UE resumes on the
				// destination replica, whose terminal snapshot follows.
				migratedEnds++
			default:
				rep.Drops++
			}
		}
		out := Outcome{
			State:    snap.State.String(),
			Steps:    snap.Steps,
			LastLoss: math.Float64bits(snap.LastLoss),
			LastRMSE: math.Float64bits(snap.LastRMSE),
		}
		// Resumes accumulate across the UE's incarnations; everything
		// else is overwritten, so Final keeps the last incarnation.
		out.Resumes = rep.Final[snap.ID].Resumes
		if snap.ResumedFrom > 0 {
			rep.Resumes++
			out.Resumes++
		}
		rep.Final[snap.ID] = out
	}

	var handlers, drivers sync.WaitGroup
	servers := make([]*transport.BSServer, spec.Replicas)
	for i := range servers {
		cfg := transport.ServerConfig{
			ReplicaID:       fmt.Sprintf("bs-%d", i),
			MaxUE:           spec.UEs,
			Sched:           transport.SchedAsync,
			Steps:           spec.Steps,
			EvalEvery:       1 << 30, // one final eval per session
			ValAnchors:      8,
			Provision:       env.Provision(),
			IdleTimeout:     spec.IdleTimeout,
			BatchWindow:     spec.BatchWindow,
			BatchMax:        spec.BatchMax,
			Retain:          spec.Retain,
			CheckpointDir:   ckptDir,
			CheckpointEvery: 1,
			OnSessionEnd:    onEnd,
		}
		if spec.Replicas > 1 {
			// Handover rides on checkpoints, so every replica gets its
			// own in-memory store; the blobs never touch disk.
			cfg.Store = store.NewMem(spec.Retain)
		}
		srv, err := transport.NewBSServer(cfg)
		if err != nil {
			return nil, fmt.Errorf("fleet: server %d: %w", i, err)
		}
		servers[i] = srv
		if spec.OnServer != nil {
			spec.OnServer(srv)
		}
	}

	// handle serves the BS end of one UE incarnation's pipe.
	handle := servers[0].Handle
	var co *coord.Coordinator
	if spec.Replicas > 1 {
		replicas := make([]coord.Replica, len(servers))
		for i, srv := range servers {
			replicas[i] = &trackedReplica{
				LocalReplica: coord.NewLocalReplica(srv),
				bs:           srv,
				wg:           &handlers,
			}
		}
		co, err = coord.New(replicas, coord.Options{})
		if err != nil {
			return nil, fmt.Errorf("fleet: coordinator: %w", err)
		}
		if spec.OnCoordinator != nil {
			spec.OnCoordinator(co)
		}
		handle = co.HandleConn
	}

	logf("fleet: %d UEs (%d churning), %d scene classes, %d steps/UE, %d replicas",
		spec.UEs, rep.ChurnUEs, spec.SceneClasses, spec.Steps, spec.Replicas)

	start := time.Now()
	for i := range env.Profiles {
		dr := newDriver(env, env.Profiles[i], handle, &handlers)
		drivers.Add(1)
		go func() {
			defer drivers.Done()
			if err := dr.run(); err != nil {
				mu.Lock()
				rep.DriverErrors++
				n := rep.DriverErrors
				mu.Unlock()
				if n <= 5 {
					logf("fleet: UE %s (%s): %v", dr.p.SessionID, dr.p.Churn, err)
				}
			}
		}()
	}

	stopDrill := make(chan struct{})
	var drillDone sync.WaitGroup
	if co != nil {
		drillDone.Add(1)
		go func() {
			defer drillDone.Done()
			handoverDrill(co, env, spec.RebalanceEvery, stopDrill)
		}()
	}

	settled := make(chan struct{})
	go func() {
		drivers.Wait()
		handlers.Wait()
		close(settled)
	}()
	select {
	case <-settled:
	case <-time.After(spec.WallLimit):
		close(stopDrill)
		live := 0
		for _, srv := range servers {
			live += srv.ActiveSessions()
		}
		return nil, fmt.Errorf("fleet: soak wedged: %d/%d sessions still live after %v",
			live, spec.UEs, spec.WallLimit)
	}
	close(stopDrill)
	drillDone.Wait()
	rep.ElapsedSec = time.Since(start).Seconds()

	for _, srv := range servers {
		rep.SharedRounds += srv.SharedRounds()
		rep.LeakedSessions += srv.ActiveSessions()
		rep.RetainedSnapshots += srv.RetainedSessions()
		rep.EvictedSnapshots += srv.EvictedSnapshots()
		if _, peak := srv.BatchQueueDepth(); peak > rep.QueuePeak {
			rep.QueuePeak = peak
		}
	}
	if spec.Replicas == 1 {
		p50, p99, rounds := servers[0].RoundLatency()
		rep.Rounds = rounds
		rep.P50Ms = float64(p50) / float64(time.Millisecond)
		rep.P99Ms = float64(p99) / float64(time.Millisecond)
	} else {
		// Per-replica rings cannot be merged exactly; fold the lifetime
		// histograms instead and read the percentiles off the buckets.
		var merged transport.LatencyHistogram
		for _, srv := range servers {
			h := srv.RoundLatencyHistogram()
			if merged.Counts == nil {
				merged = h
			} else {
				for i := range h.Counts {
					merged.Counts[i] += h.Counts[i]
				}
				merged.Sum += h.Sum
				merged.Count += h.Count
			}
		}
		rep.Rounds = merged.Count
		rep.P50Ms = float64(histQuantile(merged, 0.50)) / float64(time.Millisecond)
		rep.P99Ms = float64(histQuantile(merged, 0.99)) / float64(time.Millisecond)
	}
	if rep.ElapsedSec > 0 {
		rep.StepsPerSec = float64(rep.Rounds) / rep.ElapsedSec
	}
	if rep.Rounds > 0 {
		rep.SharedRatio = float64(rep.SharedRounds) / float64(rep.Rounds)
	}
	if co != nil {
		st := co.Stats()
		p50, p99, _ := co.HandoverLatency()
		rep.Handover = &HandoverReport{
			Replicas:     spec.Replicas,
			Migrations:   st.Migrations,
			Failed:       st.MigrationFails,
			MigratedEnds: migratedEnds,
			P50Ms:        float64(p50) / float64(time.Millisecond),
			P99Ms:        float64(p99) / float64(time.Millisecond),
		}
	}
	for _, srv := range servers {
		srv.Close()
	}
	rep.PeakRSSMB = peakRSSMB()

	logf("fleet: %d rounds in %.1fs (%.0f steps/s), shared %.3f, completed %d, drops %d, evictions %d, supersedes %d, resumes %d",
		rep.Rounds, rep.ElapsedSec, rep.StepsPerSec, rep.SharedRatio,
		rep.Completed, rep.Drops, rep.Evictions, rep.Supersedes, rep.Resumes)
	if rep.Handover != nil {
		logf("fleet: handover drill: %d migrations (%d failed attempts), p50 %.2fms p99 %.2fms",
			rep.Handover.Migrations, rep.Handover.Failed, rep.Handover.P50Ms, rep.Handover.P99Ms)
	}
	return rep, nil
}

// trackedReplica is a LocalReplica whose Dial registers the Handle
// goroutine on the soak's handlers WaitGroup, so "every handler
// finished" covers the replica side of every spliced connection and the
// leak check never races a retiring session.
type trackedReplica struct {
	*coord.LocalReplica
	bs *transport.BSServer
	wg *sync.WaitGroup
}

func (r *trackedReplica) Dial() (io.ReadWriteCloser, error) {
	ueEnd, bsEnd := net.Pipe()
	r.wg.Add(1)
	go func() {
		defer r.wg.Done()
		_ = r.bs.Handle(bsEnd)
	}()
	return ueEnd, nil
}

// handoverDrill keeps live migration happening for the whole soak: each
// tick it walks the replicas round-robin for a live migration-eligible
// session and hands it to the least-loaded other replica — a rebalance
// when the fleet is skewed, a forced handover when it is not, so
// handover traffic is sustained either way. Eligible means steady or
// flapping image-bearing UEs: the reconnect-capable drivers. (The
// coordinator's Rebalance would also pick RF-only or wedged sessions,
// whose soak drivers by design never redial — migrating those just ends
// them, which measures nothing.) Failed attempts are expected under
// churn — the chosen session can end between selection and the
// checkpoint boundary — and are counted by the coordinator, not fatal.
func handoverDrill(co *coord.Coordinator, env *Env, every time.Duration, stop <-chan struct{}) {
	eligible := make(map[string]bool, len(env.Profiles))
	for _, p := range env.Profiles {
		if (p.Churn == ChurnSteady || p.Churn == ChurnFlapping) && env.Config(p).Modality.UsesImages() {
			eligible[p.SessionID] = true
		}
	}
	replicas := co.Replicas()
	tick := time.NewTicker(every)
	defer tick.Stop()
	for i := 0; ; i++ {
		select {
		case <-stop:
			return
		case <-tick.C:
		}
		for k := 0; k < len(replicas); k++ {
			src := replicas[(i+k)%len(replicas)]
			var cand string
			for _, id := range src.LiveSessions() {
				if eligible[id] && co.RouteOf(id) == src.ID() {
					cand = id
					break
				}
			}
			if cand == "" {
				continue
			}
			var dst coord.Replica
			for _, r := range replicas {
				if r.ID() == src.ID() || r.Draining() {
					continue
				}
				if dst == nil || r.Live() < dst.Live() {
					dst = r
				}
			}
			if dst == nil {
				return
			}
			_ = co.Migrate(cand, dst.ID()) // races are counted by the coordinator
			break
		}
	}
}

// histQuantile reads a quantile off a merged lifetime histogram: the
// upper bound of the bucket where the cumulative count crosses q.
func histQuantile(h transport.LatencyHistogram, q float64) time.Duration {
	if h.Count == 0 {
		return 0
	}
	target := int64(q * float64(h.Count))
	if target < 1 {
		target = 1
	}
	var cum int64
	for i, n := range h.Counts {
		cum += n
		if cum >= target {
			if i < len(h.Bounds) {
				return h.Bounds[i]
			}
			break
		}
	}
	// Overflow bucket: report the mean of what we know exceeds the
	// largest bound.
	return h.Sum / time.Duration(h.Count)
}
