package fleet

import (
	"errors"
	"fmt"
	"math"
	"os"
	"sync"
	"time"

	"repro/internal/transport"
)

// Outcome is the terminal record of one UE's session — its final
// incarnation's state and metrics, plus how often it resumed from a
// checkpoint along the way. Loss/RMSE are kept as raw float bits so the
// determinism suite compares exact values, not formatted ones.
type Outcome struct {
	State    string `json:"state"`
	Steps    int    `json:"steps"`
	LastLoss uint64 `json:"last_loss_bits"`
	LastRMSE uint64 `json:"last_rmse_bits"`
	Resumes  int    `json:"resumes"`
}

// Report is what a fleet soak measures. It lands as the `fleet` section
// of BENCH.json.
type Report struct {
	UEs          int     `json:"ues"`
	StepsPerUE   int     `json:"steps_per_ue"`
	SceneClasses int     `json:"scene_classes"`
	ChurnUEs     int     `json:"churn_ues"`
	ElapsedSec   float64 `json:"elapsed_sec"`

	// Rounds counts training rounds served; StepsPerSec is the
	// aggregate serving throughput over the whole soak.
	Rounds      int64   `json:"rounds"`
	StepsPerSec float64 `json:"agg_steps_per_sec"`
	P50Ms       float64 `json:"round_p50_ms"`
	P99Ms       float64 `json:"round_p99_ms"`

	// SharedRatio is the fraction of rounds served by a clone group's
	// shared computation — ≈0 expected under mixed fingerprints, which
	// is the point: the fleet is the anti-clone load.
	SharedRounds int64   `json:"shared_rounds"`
	SharedRatio  float64 `json:"shared_ratio"`

	// Lifecycle outcome counters, accumulated over every session
	// incarnation by the server's end-of-session hook.
	Completed  int `json:"completed"`
	Drops      int `json:"drops"`
	Evictions  int `json:"evictions"`
	Supersedes int `json:"supersedes"`
	Resumes    int `json:"resumes"`

	// DriverErrors counts UE drivers that ended on an error their churn
	// script did not call for — always 0 in a healthy soak.
	DriverErrors int `json:"driver_errors"`

	// LeakedSessions is the number of sessions still live after every
	// driver and handler finished — always 0 in a healthy soak.
	LeakedSessions    int     `json:"leaked_sessions"`
	RetainedSnapshots int     `json:"retained_snapshots"`
	EvictedSnapshots  int64   `json:"evicted_snapshots"`
	QueuePeak         int64   `json:"batch_queue_peak"`
	PeakRSSMB         float64 `json:"peak_rss_mb"`

	// Final maps session id → its last incarnation's outcome: the
	// per-UE ground truth the determinism suite compares across runs
	// and worker counts. Excluded from BENCH.json.
	Final map[string]Outcome `json:"-"`
}

// Run executes one fleet soak: it materialises the spec's environment,
// starts an in-process BSServer, drives every profile's state machine
// to its end, and reports. logf (optional) receives coarse progress.
func Run(spec Spec, logf func(format string, args ...any)) (*Report, error) {
	if logf == nil {
		logf = func(string, ...any) {}
	}
	env, err := NewEnv(spec)
	if err != nil {
		return nil, err
	}
	spec = env.Spec

	ckptDir := ""
	if spec.Checkpoint {
		ckptDir, err = os.MkdirTemp("", "mmsl-fleet-ckpt-*")
		if err != nil {
			return nil, fmt.Errorf("fleet: checkpoint dir: %w", err)
		}
		defer os.RemoveAll(ckptDir)
	}

	rep := &Report{
		UEs:          spec.UEs,
		StepsPerUE:   spec.Steps,
		SceneClasses: spec.SceneClasses,
		Final:        make(map[string]Outcome, spec.UEs),
	}
	for _, p := range env.Profiles {
		if p.Churn != ChurnSteady {
			rep.ChurnUEs++
		}
	}

	var mu sync.Mutex
	onEnd := func(snap transport.SessionSnapshot, cause error) {
		mu.Lock()
		defer mu.Unlock()
		switch snap.State {
		case transport.SessionDetached:
			rep.Completed++
		case transport.SessionSuperseded:
			rep.Supersedes++
		case transport.SessionFailed:
			if errors.Is(cause, transport.ErrIdleTimeout) {
				rep.Evictions++
			} else {
				rep.Drops++
			}
		}
		out := Outcome{
			State:    snap.State.String(),
			Steps:    snap.Steps,
			LastLoss: math.Float64bits(snap.LastLoss),
			LastRMSE: math.Float64bits(snap.LastRMSE),
		}
		// Resumes accumulate across the UE's incarnations; everything
		// else is overwritten, so Final keeps the last incarnation.
		out.Resumes = rep.Final[snap.ID].Resumes
		if snap.ResumedFrom > 0 {
			rep.Resumes++
			out.Resumes++
		}
		rep.Final[snap.ID] = out
	}

	srv, err := transport.NewBSServer(transport.ServerConfig{
		MaxUE:           spec.UEs,
		Sched:           transport.SchedAsync,
		Steps:           spec.Steps,
		EvalEvery:       1 << 30, // one final eval per session
		ValAnchors:      8,
		Provision:       env.Provision(),
		IdleTimeout:     spec.IdleTimeout,
		BatchWindow:     spec.BatchWindow,
		BatchMax:        spec.BatchMax,
		Retain:          spec.Retain,
		CheckpointDir:   ckptDir,
		CheckpointEvery: 1,
		OnSessionEnd:    onEnd,
	})
	if err != nil {
		return nil, fmt.Errorf("fleet: server: %w", err)
	}
	if spec.OnServer != nil {
		spec.OnServer(srv)
	}

	logf("fleet: %d UEs (%d churning), %d scene classes, %d steps/UE",
		spec.UEs, rep.ChurnUEs, spec.SceneClasses, spec.Steps)

	var handlers, drivers sync.WaitGroup
	start := time.Now()
	for i := range env.Profiles {
		dr := newDriver(env, env.Profiles[i], srv, &handlers)
		drivers.Add(1)
		go func() {
			defer drivers.Done()
			if err := dr.run(); err != nil {
				mu.Lock()
				rep.DriverErrors++
				n := rep.DriverErrors
				mu.Unlock()
				if n <= 5 {
					logf("fleet: UE %s (%s): %v", dr.p.SessionID, dr.p.Churn, err)
				}
			}
		}()
	}

	settled := make(chan struct{})
	go func() {
		drivers.Wait()
		handlers.Wait()
		close(settled)
	}()
	select {
	case <-settled:
	case <-time.After(spec.WallLimit):
		return nil, fmt.Errorf("fleet: soak wedged: %d/%d sessions still live after %v",
			srv.ActiveSessions(), spec.UEs, spec.WallLimit)
	}
	rep.ElapsedSec = time.Since(start).Seconds()

	p50, p99, rounds := srv.RoundLatency()
	rep.Rounds = rounds
	rep.P50Ms = float64(p50) / float64(time.Millisecond)
	rep.P99Ms = float64(p99) / float64(time.Millisecond)
	if rep.ElapsedSec > 0 {
		rep.StepsPerSec = float64(rounds) / rep.ElapsedSec
	}
	rep.SharedRounds = srv.SharedRounds()
	if rounds > 0 {
		rep.SharedRatio = float64(rep.SharedRounds) / float64(rounds)
	}
	rep.LeakedSessions = srv.ActiveSessions()
	rep.RetainedSnapshots = srv.RetainedSessions()
	rep.EvictedSnapshots = srv.EvictedSnapshots()
	_, rep.QueuePeak = srv.BatchQueueDepth()
	srv.Close()
	rep.PeakRSSMB = peakRSSMB()

	logf("fleet: %d rounds in %.1fs (%.0f steps/s), shared %.3f, completed %d, drops %d, evictions %d, supersedes %d, resumes %d",
		rounds, rep.ElapsedSec, rep.StepsPerSec, rep.SharedRatio,
		rep.Completed, rep.Drops, rep.Evictions, rep.Supersedes, rep.Resumes)
	return rep, nil
}
