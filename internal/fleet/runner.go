package fleet

import (
	"errors"
	"fmt"
	"io"
	"math"
	"net"
	"os"
	"path/filepath"
	"sync"
	"time"

	"repro/internal/chaos"
	"repro/internal/coord"
	"repro/internal/store"
	"repro/internal/transport"
)

// Outcome is the terminal record of one UE's session — its final
// incarnation's state and metrics, plus how often it resumed from a
// checkpoint along the way. Loss/RMSE are kept as raw float bits so the
// determinism suite compares exact values, not formatted ones.
type Outcome struct {
	State    string `json:"state"`
	Steps    int    `json:"steps"`
	LastLoss uint64 `json:"last_loss_bits"`
	LastRMSE uint64 `json:"last_rmse_bits"`
	Resumes  int    `json:"resumes"`
}

// HandoverReport measures the replica fleet's live-migration drill. It
// lands as the `handover` section under `fleet` in BENCH.json.
type HandoverReport struct {
	Replicas   int   `json:"replicas"`
	Migrations int64 `json:"migrations"` // completed handovers
	Failed     int64 `json:"failed"`     // attempts lost to races (session ended mid-selection)

	// MigratedEnds counts session incarnations retired with the
	// migrated disposition across all replicas — the server-side echo
	// of Migrations.
	MigratedEnds int `json:"migrated_incarnations"`

	P50Ms float64 `json:"latency_p50_ms"`
	P99Ms float64 `json:"latency_p99_ms"`
}

// FailoverReport measures the chaos drill's crash-failover pipeline —
// MTTR split into detection (first failed probe → death verdict) and
// recovery (fence → session settled on a survivor), plus the session
// ledger. It lands as the `failover` section under `fleet` in
// BENCH.json; the CI gate fails the build on lost sessions, zero
// recoveries, or degenerate MTTR.
type FailoverReport struct {
	Replicas int `json:"replicas"`
	Kills    int `json:"kills"`   // uncontrolled replica kills injected
	Rejoins  int `json:"rejoins"` // fresh incarnations booted on the same store

	Failovers         int64 `json:"failovers"`          // crash failovers the coordinator ran
	SessionsRecovered int64 `json:"sessions_recovered"` // adopted onto survivors from durable checkpoints
	SessionsLost      int64 `json:"sessions_lost"`      // checkpointed sessions recovery could not save
	Readmissions      int64 `json:"readmissions"`       // fenced replicas back in placement after healthy probes
	RefusedDown       int64 `json:"refused_replica_down"`

	DetectP50Ms  float64 `json:"detect_p50_ms"`
	DetectP99Ms  float64 `json:"detect_p99_ms"`
	RecoverP50Ms float64 `json:"recover_p50_ms"`
	RecoverP99Ms float64 `json:"recover_p99_ms"`
}

// Report is what a fleet soak measures. It lands as the `fleet` section
// of BENCH.json.
type Report struct {
	UEs          int     `json:"ues"`
	StepsPerUE   int     `json:"steps_per_ue"`
	SceneClasses int     `json:"scene_classes"`
	ChurnUEs     int     `json:"churn_ues"`
	ElapsedSec   float64 `json:"elapsed_sec"`

	// Rounds counts training rounds served; StepsPerSec is the
	// aggregate serving throughput over the whole soak.
	Rounds      int64   `json:"rounds"`
	StepsPerSec float64 `json:"agg_steps_per_sec"`
	P50Ms       float64 `json:"round_p50_ms"`
	P99Ms       float64 `json:"round_p99_ms"`

	// SharedRatio is the fraction of rounds served by a clone group's
	// shared computation — ≈0 expected under mixed fingerprints, which
	// is the point: the fleet is the anti-clone load.
	SharedRounds int64   `json:"shared_rounds"`
	SharedRatio  float64 `json:"shared_ratio"`

	// Lifecycle outcome counters, accumulated over every session
	// incarnation by the server's end-of-session hook.
	Completed  int `json:"completed"`
	Drops      int `json:"drops"`
	Evictions  int `json:"evictions"`
	Supersedes int `json:"supersedes"`
	Resumes    int `json:"resumes"`

	// DriverErrors counts UE drivers that ended on an error their churn
	// script did not call for — always 0 in a healthy soak.
	DriverErrors int `json:"driver_errors"`

	// LeakedSessions is the number of sessions still live after every
	// driver and handler finished — always 0 in a healthy soak.
	LeakedSessions    int     `json:"leaked_sessions"`
	RetainedSnapshots int     `json:"retained_snapshots"`
	EvictedSnapshots  int64   `json:"evicted_snapshots"`
	QueuePeak         int64   `json:"batch_queue_peak"`
	PeakRSSMB         float64 `json:"peak_rss_mb"`

	// Handover is present when the soak ran a replica fleet
	// (Spec.Replicas > 1).
	Handover *HandoverReport `json:"handover,omitempty"`

	// Failover is present when the soak ran the chaos drill
	// (Spec.Chaos).
	Failover *FailoverReport `json:"failover,omitempty"`

	// Final maps session id → its last incarnation's outcome: the
	// per-UE ground truth the determinism suite compares across runs
	// and worker counts. Excluded from BENCH.json.
	Final map[string]Outcome `json:"-"`
}

// Run executes one fleet soak: it materialises the spec's environment,
// starts the in-process BS fleet (one server, or Replicas servers
// behind a coordinator), drives every profile's state machine to its
// end, and reports. logf (optional) receives coarse progress.
func Run(spec Spec, logf func(format string, args ...any)) (*Report, error) {
	if logf == nil {
		logf = func(string, ...any) {}
	}
	env, err := NewEnv(spec)
	if err != nil {
		return nil, err
	}
	spec = env.Spec

	ckptDir := ""
	if spec.Checkpoint && spec.Replicas == 1 {
		ckptDir, err = os.MkdirTemp("", "mmsl-fleet-ckpt-*")
		if err != nil {
			return nil, fmt.Errorf("fleet: checkpoint dir: %w", err)
		}
		defer os.RemoveAll(ckptDir)
	}

	rep := &Report{
		UEs:          spec.UEs,
		StepsPerUE:   spec.Steps,
		SceneClasses: spec.SceneClasses,
		Final:        make(map[string]Outcome, spec.UEs),
	}
	for _, p := range env.Profiles {
		if p.Churn != ChurnSteady {
			rep.ChurnUEs++
		}
	}

	migratedEnds := 0
	var mu sync.Mutex
	onEnd := func(snap transport.SessionSnapshot, cause error) {
		mu.Lock()
		defer mu.Unlock()
		switch snap.State {
		case transport.SessionDetached:
			rep.Completed++
		case transport.SessionSuperseded:
			rep.Supersedes++
		case transport.SessionFailed:
			switch {
			case errors.Is(cause, transport.ErrIdleTimeout):
				rep.Evictions++
			case errors.Is(cause, transport.ErrMigrated):
				// A handover, not a failure: the UE resumes on the
				// destination replica, whose terminal snapshot follows.
				migratedEnds++
			default:
				rep.Drops++
			}
		}
		out := Outcome{
			State:    snap.State.String(),
			Steps:    snap.Steps,
			LastLoss: math.Float64bits(snap.LastLoss),
			LastRMSE: math.Float64bits(snap.LastRMSE),
		}
		// Resumes accumulate across the UE's incarnations; everything
		// else is overwritten, so Final keeps the last incarnation.
		out.Resumes = rep.Final[snap.ID].Resumes
		if snap.ResumedFrom > 0 {
			rep.Resumes++
			out.Resumes++
		}
		rep.Final[snap.ID] = out
	}

	if spec.Chaos && spec.Replicas <= 1 {
		return nil, errors.New("fleet: chaos drill needs Replicas > 1 (no survivor to fail over to)")
	}

	var handlers, drivers sync.WaitGroup
	mkCfg := func(i int) transport.ServerConfig {
		return transport.ServerConfig{
			ReplicaID:       fmt.Sprintf("bs-%d", i),
			MaxUE:           spec.UEs,
			Sched:           transport.SchedAsync,
			Steps:           spec.Steps,
			EvalEvery:       1 << 30, // one final eval per session
			ValAnchors:      8,
			Provision:       env.Provision(),
			IdleTimeout:     spec.IdleTimeout,
			BatchWindow:     spec.BatchWindow,
			BatchMax:        spec.BatchMax,
			Retain:          spec.Retain,
			CheckpointDir:   ckptDir,
			CheckpointEvery: 1,
			OnSessionEnd:    onEnd,
		}
	}

	servers := make([]*transport.BSServer, spec.Replicas)
	var chaosReps []*chaos.Replica
	if spec.Chaos {
		// Chaos replicas live on durable journal stores behind a
		// fault-injecting filesystem: a kill tears the in-flight write,
		// survivors adopt from the reopened journal, and the rejoined
		// incarnation cold-start-adopts whatever replay salvages.
		chaosDir, err := os.MkdirTemp("", "mmsl-fleet-chaos-*")
		if err != nil {
			return nil, fmt.Errorf("fleet: chaos store dir: %w", err)
		}
		defer os.RemoveAll(chaosDir)
		chaosReps = make([]*chaos.Replica, spec.Replicas)
		for i := range chaosReps {
			cs := &chaosStore{
				path:   filepath.Join(chaosDir, fmt.Sprintf("bs-%d.journal", i)),
				retain: spec.Retain,
			}
			st, err := cs.open()
			if err != nil {
				return nil, fmt.Errorf("fleet: chaos store %d: %w", i, err)
			}
			cr, err := chaos.New(chaos.Config{
				Make: func(st store.Store) (*transport.BSServer, error) {
					cfg := mkCfg(i)
					cfg.Store = st
					return transport.NewBSServer(cfg)
				},
				Store:     st,
				Reopen:    cs.open,
				Tear:      cs.trip,
				HandlerWG: &handlers,
				Logf:      logf,
			})
			if err != nil {
				st.Close()
				return nil, fmt.Errorf("fleet: chaos replica %d: %w", i, err)
			}
			chaosReps[i] = cr
			servers[i] = cr.BS()
			if spec.OnServer != nil {
				spec.OnServer(cr.BS())
			}
		}
	} else {
		for i := range servers {
			cfg := mkCfg(i)
			if spec.Replicas > 1 {
				// Handover rides on checkpoints, so every replica gets its
				// own in-memory store; the blobs never touch disk.
				cfg.Store = store.NewMem(spec.Retain)
			}
			srv, err := transport.NewBSServer(cfg)
			if err != nil {
				return nil, fmt.Errorf("fleet: server %d: %w", i, err)
			}
			servers[i] = srv
			if spec.OnServer != nil {
				spec.OnServer(srv)
			}
		}
	}
	// currentServers resolves the live incarnations: a chaos replica that
	// was killed and rejoined runs a fresh server object, so accounting
	// must not read the stale one it booted with.
	currentServers := func() []*transport.BSServer {
		if chaosReps == nil {
			return servers
		}
		out := make([]*transport.BSServer, len(chaosReps))
		for i, cr := range chaosReps {
			out[i] = cr.BS()
		}
		return out
	}

	// handle serves the BS end of one UE incarnation's pipe.
	handle := servers[0].Handle
	var co *coord.Coordinator
	if spec.Replicas > 1 {
		replicas := make([]coord.Replica, spec.Replicas)
		for i := range replicas {
			if spec.Chaos {
				replicas[i] = chaosReps[i]
			} else {
				replicas[i] = &trackedReplica{
					LocalReplica: coord.NewLocalReplica(servers[i]),
					bs:           servers[i],
					wg:           &handlers,
				}
			}
		}
		opts := coord.Options{}
		if spec.Chaos {
			// A soak round is sub-millisecond; scale recovery's retry
			// schedule to the load it races rather than the deploy-scale
			// defaults.
			opts.Failover = coord.FailoverConfig{
				RecoverParallel: 4,
				RetryLimit:      4,
				RetryBackoff:    transport.Backoff{Base: 2 * time.Millisecond, Max: 25 * time.Millisecond},
			}
		}
		co, err = coord.New(replicas, opts)
		if err != nil {
			return nil, fmt.Errorf("fleet: coordinator: %w", err)
		}
		if spec.OnCoordinator != nil {
			spec.OnCoordinator(co)
		}
		if spec.Chaos {
			// Soak-speed probing: a kill is detected in a few intervals;
			// the generous timeout keeps scheduler hiccups under -race
			// from minting false death verdicts.
			det := co.StartDetector(coord.DetectorConfig{
				Interval:    3 * time.Millisecond,
				Timeout:     50 * time.Millisecond,
				FailAfter:   3,
				RejoinAfter: 2,
			})
			defer det.Stop()
		}
		handle = co.HandleConn
	}

	logf("fleet: %d UEs (%d churning), %d scene classes, %d steps/UE, %d replicas",
		spec.UEs, rep.ChurnUEs, spec.SceneClasses, spec.Steps, spec.Replicas)

	start := time.Now()
	for i := range env.Profiles {
		dr := newDriver(env, env.Profiles[i], handle, &handlers)
		drivers.Add(1)
		go func() {
			defer drivers.Done()
			if err := dr.run(); err != nil {
				mu.Lock()
				rep.DriverErrors++
				n := rep.DriverErrors
				mu.Unlock()
				if n <= 5 {
					logf("fleet: UE %s (%s): %v", dr.p.SessionID, dr.p.Churn, err)
				}
			}
		}()
	}

	stopDrill := make(chan struct{})
	var drillDone sync.WaitGroup
	if co != nil {
		drillDone.Add(1)
		go func() {
			defer drillDone.Done()
			handoverDrill(co, env, spec.RebalanceEvery, stopDrill)
		}()
	}
	if spec.Chaos {
		drillDone.Add(1)
		go func() {
			defer drillDone.Done()
			chaosDrill(co, chaosReps, spec.ChaosInterval, stopDrill, logf)
		}()
	}

	settled := make(chan struct{})
	go func() {
		drivers.Wait()
		handlers.Wait()
		close(settled)
	}()
	select {
	case <-settled:
	case <-time.After(spec.WallLimit):
		close(stopDrill)
		live := 0
		for _, srv := range currentServers() {
			live += srv.ActiveSessions()
		}
		return nil, fmt.Errorf("fleet: soak wedged: %d/%d sessions still live after %v",
			live, spec.UEs, spec.WallLimit)
	}
	close(stopDrill)
	drillDone.Wait()
	if spec.Chaos {
		// Quiesce the failure machinery before accounting: stop the probe
		// loops (idempotent with the deferred Stop) and wait out any
		// failover a last-moment verdict launched.
		if d := co.Detector(); d != nil {
			d.Stop()
		}
		for t0 := time.Now(); co.RecoveriesActive() > 0 && time.Since(t0) < 5*time.Second; {
			time.Sleep(time.Millisecond)
		}
	}
	rep.ElapsedSec = time.Since(start).Seconds()

	// From here on read the live incarnations (identical to servers in a
	// chaos-free soak). Counters that died with a killed incarnation —
	// its rounds, its ring samples — are gone, like a real crashed
	// process's; the chaos report measures recovery, not throughput.
	servers = currentServers()

	for _, srv := range servers {
		rep.SharedRounds += srv.SharedRounds()
		rep.LeakedSessions += srv.ActiveSessions()
		rep.RetainedSnapshots += srv.RetainedSessions()
		rep.EvictedSnapshots += srv.EvictedSnapshots()
		if _, peak := srv.BatchQueueDepth(); peak > rep.QueuePeak {
			rep.QueuePeak = peak
		}
	}
	if spec.Replicas == 1 {
		p50, p99, rounds := servers[0].RoundLatency()
		rep.Rounds = rounds
		rep.P50Ms = float64(p50) / float64(time.Millisecond)
		rep.P99Ms = float64(p99) / float64(time.Millisecond)
	} else {
		// Per-replica rings cannot be merged exactly; fold the lifetime
		// histograms instead and read the percentiles off the buckets.
		var merged transport.LatencyHistogram
		for _, srv := range servers {
			h := srv.RoundLatencyHistogram()
			if merged.Counts == nil {
				merged = h
			} else {
				for i := range h.Counts {
					merged.Counts[i] += h.Counts[i]
				}
				merged.Sum += h.Sum
				merged.Count += h.Count
			}
		}
		rep.Rounds = merged.Count
		rep.P50Ms = float64(histQuantile(merged, 0.50)) / float64(time.Millisecond)
		rep.P99Ms = float64(histQuantile(merged, 0.99)) / float64(time.Millisecond)
	}
	if rep.ElapsedSec > 0 {
		rep.StepsPerSec = float64(rep.Rounds) / rep.ElapsedSec
	}
	if rep.Rounds > 0 {
		rep.SharedRatio = float64(rep.SharedRounds) / float64(rep.Rounds)
	}
	if co != nil {
		st := co.Stats()
		p50, p99, _ := co.HandoverLatency()
		rep.Handover = &HandoverReport{
			Replicas:     spec.Replicas,
			Migrations:   st.Migrations,
			Failed:       st.MigrationFails,
			MigratedEnds: migratedEnds,
			P50Ms:        float64(p50) / float64(time.Millisecond),
			P99Ms:        float64(p99) / float64(time.Millisecond),
		}
		if spec.Chaos {
			dp50, dp99, _ := co.DetectionLatency()
			rp50, rp99, _ := co.RecoveryLatency()
			fo := &FailoverReport{
				Replicas:          spec.Replicas,
				Failovers:         st.Failovers,
				SessionsRecovered: st.SessionsRecovered,
				SessionsLost:      st.SessionsLost,
				Readmissions:      st.Rejoins,
				RefusedDown:       st.RefusedDown,
				DetectP50Ms:       float64(dp50) / float64(time.Millisecond),
				DetectP99Ms:       float64(dp99) / float64(time.Millisecond),
				RecoverP50Ms:      float64(rp50) / float64(time.Millisecond),
				RecoverP99Ms:      float64(rp99) / float64(time.Millisecond),
			}
			for _, cr := range chaosReps {
				fo.Kills += cr.Kills()
				fo.Rejoins += cr.Rejoins()
			}
			rep.Failover = fo
		}
	}
	for _, srv := range servers {
		srv.Close()
	}
	rep.PeakRSSMB = peakRSSMB()

	logf("fleet: %d rounds in %.1fs (%.0f steps/s), shared %.3f, completed %d, drops %d, evictions %d, supersedes %d, resumes %d",
		rep.Rounds, rep.ElapsedSec, rep.StepsPerSec, rep.SharedRatio,
		rep.Completed, rep.Drops, rep.Evictions, rep.Supersedes, rep.Resumes)
	if rep.Handover != nil {
		logf("fleet: handover drill: %d migrations (%d failed attempts), p50 %.2fms p99 %.2fms",
			rep.Handover.Migrations, rep.Handover.Failed, rep.Handover.P50Ms, rep.Handover.P99Ms)
	}
	if rep.Failover != nil {
		logf("fleet: chaos drill: %d kills, %d rejoins, %d failovers: %d recovered, %d lost; detect p50 %.2fms p99 %.2fms, recover p50 %.2fms p99 %.2fms",
			rep.Failover.Kills, rep.Failover.Rejoins, rep.Failover.Failovers,
			rep.Failover.SessionsRecovered, rep.Failover.SessionsLost,
			rep.Failover.DetectP50Ms, rep.Failover.DetectP99Ms,
			rep.Failover.RecoverP50Ms, rep.Failover.RecoverP99Ms)
	}
	return rep, nil
}

// trackedReplica is a LocalReplica whose Dial registers the Handle
// goroutine on the soak's handlers WaitGroup, so "every handler
// finished" covers the replica side of every spliced connection and the
// leak check never races a retiring session.
type trackedReplica struct {
	*coord.LocalReplica
	bs *transport.BSServer
	wg *sync.WaitGroup
}

func (r *trackedReplica) Dial() (io.ReadWriteCloser, error) {
	ueEnd, bsEnd := net.Pipe()
	r.wg.Add(1)
	go func() {
		defer r.wg.Done()
		_ = r.bs.Handle(bsEnd)
	}()
	return ueEnd, nil
}

// chaosStore owns one replica's durable journal path. Every open —
// boot, coordinator takeover after a kill, rejoin — builds a fresh
// fault-injecting filesystem over the same file, because a FaultFS
// stays tripped forever once its budget dies with an incarnation.
// trip corrupts whatever write is in flight on the current one.
type chaosStore struct {
	path   string
	retain int

	mu  sync.Mutex
	cur *store.FaultFS
}

func (cs *chaosStore) open() (store.Store, error) {
	ff := store.NewFaultFS(store.OS, 1<<40)
	st, err := store.OpenJournal(cs.path, store.JournalOptions{Retain: cs.retain, FS: ff})
	if err != nil {
		return nil, err
	}
	cs.mu.Lock()
	cs.cur = ff
	cs.mu.Unlock()
	return st, nil
}

func (cs *chaosStore) trip() {
	cs.mu.Lock()
	ff := cs.cur
	cs.mu.Unlock()
	if ff != nil {
		ff.Trip()
	}
}

// chaosDrill injects failures for the whole soak: round-robin over the
// replicas it kills one uncontrolled (tearing its in-flight store
// write), waits for the detector's verdict and the coordinator's crash
// failover to settle, rejoins the replica as a fresh incarnation on the
// same journal, and waits for the detector to readmit it — so every
// cycle starts from a fully-fenced-free fleet and at most one replica
// is ever down. Every fourth action is a freeze instead: a stall long
// enough to read as gray but short of the probe timeout, exercising the
// slow-replica verdict without a failover.
func chaosDrill(co *coord.Coordinator, reps []*chaos.Replica, every time.Duration, stop <-chan struct{}, logf func(string, ...any)) {
	pause := func(d time.Duration) bool {
		select {
		case <-stop:
			return false
		case <-time.After(d):
			return true
		}
	}
	// until polls cond to true, giving up on stop or after limit.
	until := func(limit time.Duration, cond func() bool) bool {
		deadline := time.Now().Add(limit)
		for {
			if cond() {
				return true
			}
			if time.Now().After(deadline) {
				return false
			}
			if !pause(time.Millisecond) {
				return false
			}
		}
	}
	kills := 0
	for cycle := 0; ; cycle++ {
		if !pause(every) {
			return
		}
		if cycle%4 == 3 {
			// Gray drill: freeze past the gray threshold (Timeout/2 of
			// the soak detector's 50ms) but short of the timeout.
			reps[cycle%len(reps)].Stall(30 * time.Millisecond)
			continue
		}
		// Kills rotate on their own counter so every replica takes its
		// turn dying even when the gray cadence aligns with fleet size.
		victim := reps[kills%len(reps)]
		kills++
		prevFailovers := co.Stats().Failovers
		victim.Kill(true)
		if !until(10*time.Second, func() bool {
			return co.Stats().Failovers > prevFailovers && co.RecoveriesActive() == 0
		}) {
			select {
			case <-stop: // soak over before the verdict; leave it down
				return
			default:
				logf("fleet: chaos drill: failover of %s did not settle; rejoining anyway", victim.ID())
			}
		}
		if err := victim.Rejoin(); err != nil {
			logf("fleet: chaos drill: rejoin %s: %v", victim.ID(), err)
			return
		}
		// Readmission quota is a handful of fast probes; don't kill the
		// next replica until the fleet is whole again.
		until(10*time.Second, func() bool { return !co.IsFenced(victim.ID()) })
	}
}

// handoverDrill keeps live migration happening for the whole soak: each
// tick it walks the replicas round-robin for a live migration-eligible
// session and hands it to the least-loaded other replica — a rebalance
// when the fleet is skewed, a forced handover when it is not, so
// handover traffic is sustained either way. Eligible means steady or
// flapping image-bearing UEs: the reconnect-capable drivers. (The
// coordinator's Rebalance would also pick RF-only or wedged sessions,
// whose soak drivers by design never redial — migrating those just ends
// them, which measures nothing.) Failed attempts are expected under
// churn — the chosen session can end between selection and the
// checkpoint boundary — and are counted by the coordinator, not fatal.
func handoverDrill(co *coord.Coordinator, env *Env, every time.Duration, stop <-chan struct{}) {
	eligible := make(map[string]bool, len(env.Profiles))
	for _, p := range env.Profiles {
		if (p.Churn == ChurnSteady || p.Churn == ChurnFlapping) && env.Config(p).Modality.UsesImages() {
			eligible[p.SessionID] = true
		}
	}
	replicas := co.Replicas()
	tick := time.NewTicker(every)
	defer tick.Stop()
	for i := 0; ; i++ {
		select {
		case <-stop:
			return
		case <-tick.C:
		}
		for k := 0; k < len(replicas); k++ {
			src := replicas[(i+k)%len(replicas)]
			var cand string
			for _, id := range src.LiveSessions() {
				if eligible[id] && co.RouteOf(id) == src.ID() {
					cand = id
					break
				}
			}
			if cand == "" {
				continue
			}
			var dst coord.Replica
			for _, r := range replicas {
				if r.ID() == src.ID() || r.Draining() {
					continue
				}
				if dst == nil || r.Live() < dst.Live() {
					dst = r
				}
			}
			if dst == nil {
				return
			}
			_ = co.Migrate(cand, dst.ID()) // races are counted by the coordinator
			break
		}
	}
}

// histQuantile reads a quantile off a merged lifetime histogram: the
// upper bound of the bucket where the cumulative count crosses q.
func histQuantile(h transport.LatencyHistogram, q float64) time.Duration {
	if h.Count == 0 {
		return 0
	}
	target := int64(q * float64(h.Count))
	if target < 1 {
		target = 1
	}
	var cum int64
	for i, n := range h.Counts {
		cum += n
		if cum >= target {
			if i < len(h.Bounds) {
				return h.Bounds[i]
			}
			break
		}
	}
	// Overflow bucket: report the mean of what we know exceeds the
	// largest bound.
	return h.Sum / time.Duration(h.Count)
}
