package fleet

import (
	"bytes"
	"encoding/json"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/control"
	"repro/internal/split"
	"repro/internal/tensor"
	"repro/internal/transport"
)

// Profile generation must be byte-identical across calls: the entire
// profile set is a pure function of (Seed, index).
func TestProfilesByteIdentical(t *testing.T) {
	spec := Spec{UEs: 128, Seed: 42, ChurnFraction: 0.5}
	a, err := json.Marshal(spec.Profiles())
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(spec.Profiles())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatal("two Profiles() calls for one spec differ")
	}
	if c, _ := json.Marshal(Spec{UEs: 128, Seed: 43, ChurnFraction: 0.5}.Profiles()); bytes.Equal(a, c) {
		t.Fatal("different master seeds produced identical profile sets")
	}
}

// Profile i depends on (Seed, SceneClasses, i) alone, so resizing the
// fleet at a fixed class count preserves the prefix: the first N
// profiles of a larger fleet are the smaller fleet, byte for byte.
func TestProfilesStableUnderResize(t *testing.T) {
	small := Spec{UEs: 32, Seed: 7, ChurnFraction: 0.3, SceneClasses: 16}.Profiles()
	big := Spec{UEs: 96, Seed: 7, ChurnFraction: 0.3, SceneClasses: 16}.Profiles()
	for i := range small {
		a, _ := json.Marshal(small[i])
		b, _ := json.Marshal(big[i])
		if !bytes.Equal(a, b) {
			t.Fatalf("profile %d changed when the fleet grew:\n%s\nvs\n%s", i, a, b)
		}
	}
}

// A moderately sized fleet must actually be heterogeneous: every
// modality, pooling width and churn behaviour represented, plus
// stragglers and clear-vs-blocked links.
func TestProfileVariety(t *testing.T) {
	profiles := Spec{UEs: 256, Seed: 3, ChurnFraction: 0.5}.Profiles()
	mods := map[split.Modality]int{}
	pools := map[int]int{}
	churns := map[Churn]int{}
	heavy, blocked := 0, 0
	for _, p := range profiles {
		mods[p.Modality]++
		pools[p.Pool]++
		churns[p.Churn]++
		if p.HeavyTail {
			heavy++
		}
		if p.BlockageDB > 10 {
			blocked++
		}
		if !p.Modality.UsesImages() && p.Churn != ChurnSteady {
			t.Fatalf("profile %d: RF-only UE with churn %v", p.Index, p.Churn)
		}
	}
	for _, m := range []split.Modality{split.RFOnly, split.ImageOnly, split.ImageRF} {
		if mods[m] == 0 {
			t.Errorf("no UE with modality %v", m)
		}
	}
	for _, w := range []int{2, 4, 8} {
		if pools[w] == 0 {
			t.Errorf("no UE with pool width %d", w)
		}
	}
	for c := ChurnSteady; c < numChurn; c++ {
		if churns[c] == 0 {
			t.Errorf("no UE with churn %v", c)
		}
	}
	if heavy == 0 || blocked == 0 {
		t.Errorf("no straggler (%d) or no blocked link (%d) in %d UEs", heavy, blocked, len(profiles))
	}
}

func miniSpec() Spec {
	return Spec{
		UEs: 10, Seed: 42, Steps: 4,
		SceneClasses: 3, Frames: 120,
		ChurnFraction: 0.5,
		Checkpoint:    true,
	}
}

func checkHealthy(t *testing.T, rep *Report, ues int) {
	t.Helper()
	if rep.DriverErrors != 0 {
		t.Errorf("%d driver errors", rep.DriverErrors)
	}
	if rep.LeakedSessions != 0 {
		t.Errorf("%d sessions leaked", rep.LeakedSessions)
	}
	if len(rep.Final) != ues {
		t.Errorf("%d final outcomes, want %d", len(rep.Final), ues)
	}
	if rep.Rounds == 0 {
		t.Error("no rounds served")
	}
}

// The fleet extension of invariants 6–8: one spec produces identical
// per-UE final outcomes — states, step counts, exact loss/RMSE bits —
// across runs and across tensor worker counts, churn included.
func TestFleetDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("fleet soak in -short")
	}
	run := func() *Report {
		rep, err := Run(miniSpec(), nil)
		if err != nil {
			t.Fatal(err)
		}
		checkHealthy(t, rep, 10)
		return rep
	}
	ref := run()
	again := run()
	compareFinal(t, "rerun", ref.Final, again.Final)

	old := tensor.Workers()
	defer tensor.SetWorkers(old)
	tensor.SetWorkers(3)
	wide := run()
	tensor.SetWorkers(1)
	narrow := run()
	compareFinal(t, "3 workers", ref.Final, wide.Final)
	compareFinal(t, "1 worker", ref.Final, narrow.Final)
}

func compareFinal(t *testing.T, label string, want, got map[string]Outcome) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: %d outcomes vs %d", label, len(got), len(want))
	}
	for id, w := range want {
		g, ok := got[id]
		if !ok {
			t.Errorf("%s: UE %s missing", label, id)
			continue
		}
		if g != w {
			t.Errorf("%s: UE %s diverged:\n got %+v\nwant %+v", label, id, g, w)
		}
	}
}

// TestChurnSoak64 is the CI churn soak (run race-enabled by the fleet
// CI job): 64 heterogeneous UEs with aggressive churn, asserting the
// session store ends empty — zero leaks, no wedged deadlines — and that
// every churn path actually fired. A control-plane scraper hammers
// /metrics, /sessions and /healthz throughout, so the race detector
// covers every counter the exposition reads against the full churn
// load, and each scrape must stay format-valid.
func TestChurnSoak64(t *testing.T) {
	if testing.Short() {
		t.Skip("fleet soak in -short")
	}
	stopScrape := make(chan struct{})
	scrapeDone := make(chan struct{})
	spec := Spec{
		UEs: 64, Seed: 7, Steps: 5,
		SceneClasses: 8, Frames: 120,
		ChurnFraction: 0.6,
		Checkpoint:    true,
		OnServer: func(srv *transport.BSServer) {
			ctl := control.New(srv, control.Options{})
			go func() {
				defer close(scrapeDone)
				for {
					select {
					case <-stopScrape:
						return
					default:
					}
					for _, path := range []string{"/metrics", "/sessions", "/healthz", "/config"} {
						rec := httptest.NewRecorder()
						ctl.Handler().ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
						if rec.Code != 200 {
							t.Errorf("scrape %s: %d", path, rec.Code)
							return
						}
						if path == "/metrics" {
							if err := control.ValidateExposition(rec.Body.Bytes()); err != nil {
								t.Errorf("mid-soak scrape invalid: %v", err)
								return
							}
						}
					}
				}
			}()
		},
	}
	rep, err := Run(spec, t.Logf)
	close(stopScrape)
	<-scrapeDone
	if err != nil {
		t.Fatal(err)
	}
	checkHealthy(t, rep, 64)
	if rep.Completed == 0 {
		t.Error("no session completed")
	}
	if rep.Evictions == 0 {
		t.Error("no idle UE was evicted")
	}
	if rep.Supersedes == 0 {
		t.Error("no session was superseded")
	}
	if rep.Drops == 0 {
		t.Error("no mid-round drop failed a session")
	}
	if rep.Resumes == 0 {
		t.Error("no flapping UE resumed from a checkpoint")
	}
	if rep.RetainedSnapshots > 128 {
		t.Errorf("retention ring overran: %d snapshots", rep.RetainedSnapshots)
	}
	// Mixed fingerprints: cross-session sharing must find ~nothing.
	if rep.SharedRatio > 0.05 {
		t.Errorf("shared ratio %.3f under mixed fingerprints, want ≈0", rep.SharedRatio)
	}
}

// TestChaosSoak64 is the CI chaos soak (run race-enabled by the fleet
// CI job): 64 heterogeneous churning UEs over 4 replicas while the
// chaos drill kills replicas uncontrolled — tearing the in-flight
// store write on the way down — and rejoins them as fresh incarnations
// on the same journal. Healthy means the soak drains with zero driver
// errors and zero leaked sessions, crash failover actually ran (kills,
// recoveries and readmissions all nonzero) and no checkpointed session
// was lost: invariant 10's ledger under real churn.
func TestChaosSoak64(t *testing.T) {
	if testing.Short() {
		t.Skip("fleet soak in -short")
	}
	spec := Spec{
		UEs: 64, Seed: 23, Steps: 30,
		SceneClasses: 8, Frames: 120,
		ChurnFraction: 0.4,
		Replicas:      4,
		Chaos:         true,
		ChaosInterval: 60 * time.Millisecond,
	}
	rep, err := Run(spec, t.Logf)
	if err != nil {
		t.Fatal(err)
	}
	checkHealthy(t, rep, 64)
	fo := rep.Failover
	if fo == nil {
		t.Fatal("chaos soak produced no failover report")
	}
	if fo.Kills == 0 || fo.Rejoins == 0 {
		t.Fatalf("chaos drill idle: %d kills, %d rejoins", fo.Kills, fo.Rejoins)
	}
	if fo.Failovers == 0 {
		t.Error("no crash failover ran")
	}
	if fo.SessionsRecovered == 0 {
		t.Error("no session was recovered onto a survivor")
	}
	if fo.SessionsLost != 0 {
		t.Errorf("%d checkpointed sessions lost in failover", fo.SessionsLost)
	}
	if fo.Readmissions == 0 {
		t.Error("no killed replica was readmitted after rejoin")
	}
	if fo.DetectP50Ms <= 0 || fo.DetectP99Ms < fo.DetectP50Ms {
		t.Errorf("degenerate detection latency: p50 %.3fms p99 %.3fms", fo.DetectP50Ms, fo.DetectP99Ms)
	}
	if fo.RecoverP50Ms <= 0 || fo.RecoverP99Ms < fo.RecoverP50Ms {
		t.Errorf("degenerate recovery latency: p50 %.3fms p99 %.3fms", fo.RecoverP50Ms, fo.RecoverP99Ms)
	}
	if rep.Resumes == 0 {
		t.Error("no UE resumed from a checkpoint after failover")
	}
}

// TestReplicaFleetHandover is the sharded soak: UEs behind a
// coordinator over 4 replicas with the handover drill live-migrating
// sessions throughout. Healthy means zero driver errors and zero leaked
// sessions fleet-wide, with the drill having actually moved sessions —
// every migrated UE reconnecting and resuming on its new replica.
func TestReplicaFleetHandover(t *testing.T) {
	if testing.Short() {
		t.Skip("fleet soak in -short")
	}
	spec := Spec{
		UEs: 16, Seed: 11, Steps: 40,
		SceneClasses: 4, Frames: 120,
		ChurnFraction:  0.3,
		Replicas:       4,
		RebalanceEvery: 2 * time.Millisecond,
	}
	rep, err := Run(spec, t.Logf)
	if err != nil {
		t.Fatal(err)
	}
	checkHealthy(t, rep, 16)
	if rep.Handover == nil {
		t.Fatal("replica fleet produced no handover report")
	}
	h := rep.Handover
	if h.Replicas != 4 {
		t.Errorf("handover report names %d replicas, want 4", h.Replicas)
	}
	if h.Migrations == 0 {
		t.Fatal("handover drill completed no migration")
	}
	if h.MigratedEnds < int(h.Migrations) {
		t.Errorf("%d migrated incarnations for %d handovers", h.MigratedEnds, h.Migrations)
	}
	if h.P50Ms <= 0 || h.P99Ms < h.P50Ms {
		t.Errorf("degenerate handover latency: p50 %.3fms p99 %.3fms", h.P50Ms, h.P99Ms)
	}
	// A handed-over UE reconnects with a resume token — except one
	// migrated before its first checkpoint, which fresh-joins the
	// destination — so resumes track migrations closely but not exactly.
	if rep.Resumes == 0 {
		t.Error("no migrated UE resumed on its destination replica")
	}
	if rep.Completed == 0 {
		t.Error("no session completed")
	}
}
