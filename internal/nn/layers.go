package nn

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/tensor"
)

// Layers own their forward/backward scratch: each instance keeps its
// output and gradient buffers across calls (re-headered only when the
// incoming shape changes), so steady-state training allocates nothing.
// Layer instances are single-threaded — the existing Layer contract —
// which is exactly what makes instance-owned scratch safe. The returned
// tensors are therefore only valid until the instance's next
// Forward/Backward call; callers that need them longer must Clone.

// Dense is a fully-connected layer y = x·W + b for x of shape (N, In).
type Dense struct {
	W, B *Param
	in   *tensor.Tensor // cached input of the latest Forward

	out, dx, wg *tensor.Tensor // instance-owned scratch
}

// NewDense returns a Dense layer with Glorot-uniform weights and zero bias.
func NewDense(rng *rand.Rand, in, out int) *Dense {
	limit := math.Sqrt(6.0 / float64(in+out))
	return &Dense{
		W: NewParam("dense.w", tensor.RandUniform(rng, -limit, limit, in, out)),
		B: NewParam("dense.b", tensor.New(1, out)),
	}
}

// Forward computes x·W + b.
func (d *Dense) Forward(x *tensor.Tensor) *tensor.Tensor {
	if x.Rank() != 2 || x.Dim(1) != d.W.Value.Dim(0) {
		panic(fmt.Sprintf("nn: Dense input shape %v incompatible with W %v", x.Shape(), d.W.Value.Shape()))
	}
	d.in = x
	n, o := x.Dim(0), d.W.Value.Dim(1)
	d.out = tensor.EnsureShape(d.out, n, o)
	tensor.MatMulInto(d.out, x, d.W.Value)
	bd := d.B.Value.Data()
	od := d.out.Data()
	for i := 0; i < n; i++ {
		row := od[i*o : (i+1)*o]
		for j := range row {
			row[j] += bd[j]
		}
	}
	return d.out
}

// Backward accumulates dW = xᵀ·g, db = Σg and returns dx = g·Wᵀ.
func (d *Dense) Backward(grad *tensor.Tensor) *tensor.Tensor {
	if d.in == nil {
		panic("nn: Dense.Backward before Forward")
	}
	d.wg = tensor.EnsureShape(d.wg, d.W.Value.Dim(0), d.W.Value.Dim(1))
	tensor.MatMulTransAInto(d.wg, d.in, grad)
	d.W.Grad.AddInPlace(d.wg)
	n, o := grad.Dim(0), grad.Dim(1)
	gb := d.B.Grad.Data()
	gd := grad.Data()
	for i := 0; i < n; i++ {
		row := gd[i*o : (i+1)*o]
		for j := range row {
			gb[j] += row[j]
		}
	}
	d.dx = tensor.EnsureShape(d.dx, d.in.Dim(0), d.in.Dim(1))
	tensor.MatMulTransBInto(d.dx, grad, d.W.Value)
	return d.dx
}

// Params returns the weight and bias parameters.
func (d *Dense) Params() []*Param { return []*Param{d.W, d.B} }

// Flatten reshapes (N, ...) to (N, prod(...)). Backward restores the shape.
type Flatten struct {
	inShape []int
}

// NewFlatten returns a Flatten layer.
func NewFlatten() *Flatten { return &Flatten{} }

// Forward flattens all but the leading (batch) dimension.
func (f *Flatten) Forward(x *tensor.Tensor) *tensor.Tensor {
	f.inShape = x.Shape()
	n := x.Dim(0)
	return x.Reshape(n, x.Size()/n)
}

// Backward restores the cached input shape.
func (f *Flatten) Backward(grad *tensor.Tensor) *tensor.Tensor {
	if f.inShape == nil {
		panic("nn: Flatten.Backward before Forward")
	}
	return grad.Reshape(f.inShape...)
}

// Params returns nil; Flatten has no parameters.
func (f *Flatten) Params() []*Param { return nil }

// actKind selects a specialised element-wise kernel; the generic closure
// path remains for custom activations.
type actKind uint8

const (
	actGeneric actKind = iota
	actReLU
	actTanh
	actSigmoid
)

// Activation is a parameter-free element-wise layer defined by a function
// and the derivative expressed in terms of the cached output.
type Activation struct {
	name  string
	kind  actKind
	fn    func(float64) float64
	deriv func(out float64) float64 // derivative as a function of the output
	out   *tensor.Tensor
	gout  *tensor.Tensor
}

// NewReLU returns max(0, x).
func NewReLU() *Activation {
	return &Activation{
		name: "relu",
		kind: actReLU,
		fn:   func(v float64) float64 { return math.Max(0, v) },
		deriv: func(out float64) float64 {
			if out > 0 {
				return 1
			}
			return 0
		},
	}
}

// NewTanh returns tanh(x); d/dx = 1 - out².
func NewTanh() *Activation {
	return &Activation{
		name:  "tanh",
		kind:  actTanh,
		fn:    math.Tanh,
		deriv: func(out float64) float64 { return 1 - out*out },
	}
}

// NewSigmoid returns σ(x) = 1/(1+e^{-x}); d/dx = out·(1-out).
func NewSigmoid() *Activation {
	return &Activation{
		name:  "sigmoid",
		kind:  actSigmoid,
		fn:    sigmoid,
		deriv: func(out float64) float64 { return out * (1 - out) },
	}
}

func sigmoid(v float64) float64 { return 1 / (1 + math.Exp(-v)) }

// Forward applies the activation element-wise.
func (a *Activation) Forward(x *tensor.Tensor) *tensor.Tensor {
	a.out = tensor.EnsureShape(a.out, x.Shape()...)
	xd, od := x.Data(), a.out.Data()
	switch a.kind {
	case actReLU:
		// Specialised: the UE CNN applies ReLU to every pixel of every
		// frame in the batch (hundreds of thousands of elements per
		// step); a branch beats a closure call by a wide margin.
		for i, v := range xd {
			if v > 0 {
				od[i] = v
			} else {
				od[i] = 0
			}
		}
	case actTanh:
		for i, v := range xd {
			od[i] = math.Tanh(v)
		}
	case actSigmoid:
		for i, v := range xd {
			od[i] = sigmoid(v)
		}
	default:
		for i, v := range xd {
			od[i] = a.fn(v)
		}
	}
	return a.out
}

// Backward multiplies the upstream gradient by the local derivative.
func (a *Activation) Backward(grad *tensor.Tensor) *tensor.Tensor {
	if a.out == nil {
		panic(fmt.Sprintf("nn: %s.Backward before Forward", a.name))
	}
	a.gout = tensor.EnsureShape(a.gout, grad.Shape()...)
	gd, od, rd := grad.Data(), a.out.Data(), a.gout.Data()
	switch a.kind {
	case actReLU:
		for i := range rd {
			if od[i] > 0 {
				rd[i] = gd[i]
			} else {
				rd[i] = 0
			}
		}
	case actTanh:
		for i := range rd {
			rd[i] = gd[i] * (1 - od[i]*od[i])
		}
	case actSigmoid:
		for i := range rd {
			rd[i] = gd[i] * od[i] * (1 - od[i])
		}
	default:
		for i := range rd {
			rd[i] = gd[i] * a.deriv(od[i])
		}
	}
	return a.gout
}

// Params returns nil; activations have no parameters.
func (a *Activation) Params() []*Param { return nil }
