package nn

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/tensor"
)

// Dense is a fully-connected layer y = x·W + b for x of shape (N, In).
type Dense struct {
	W, B *Param
	in   *tensor.Tensor // cached input of the latest Forward
}

// NewDense returns a Dense layer with Glorot-uniform weights and zero bias.
func NewDense(rng *rand.Rand, in, out int) *Dense {
	limit := math.Sqrt(6.0 / float64(in+out))
	return &Dense{
		W: NewParam("dense.w", tensor.RandUniform(rng, -limit, limit, in, out)),
		B: NewParam("dense.b", tensor.New(1, out)),
	}
}

// Forward computes x·W + b.
func (d *Dense) Forward(x *tensor.Tensor) *tensor.Tensor {
	if x.Rank() != 2 || x.Dim(1) != d.W.Value.Dim(0) {
		panic(fmt.Sprintf("nn: Dense input shape %v incompatible with W %v", x.Shape(), d.W.Value.Shape()))
	}
	d.in = x
	out := tensor.MatMul(x, d.W.Value)
	n, o := out.Dim(0), out.Dim(1)
	bd := d.B.Value.Data()
	od := out.Data()
	for i := 0; i < n; i++ {
		row := od[i*o : (i+1)*o]
		for j := range row {
			row[j] += bd[j]
		}
	}
	return out
}

// Backward accumulates dW = xᵀ·g, db = Σg and returns dx = g·Wᵀ.
func (d *Dense) Backward(grad *tensor.Tensor) *tensor.Tensor {
	if d.in == nil {
		panic("nn: Dense.Backward before Forward")
	}
	d.W.Grad.AddInPlace(tensor.MatMulTransA(d.in, grad))
	n, o := grad.Dim(0), grad.Dim(1)
	gb := d.B.Grad.Data()
	gd := grad.Data()
	for i := 0; i < n; i++ {
		row := gd[i*o : (i+1)*o]
		for j := range row {
			gb[j] += row[j]
		}
	}
	return tensor.MatMulTransB(grad, d.W.Value)
}

// Params returns the weight and bias parameters.
func (d *Dense) Params() []*Param { return []*Param{d.W, d.B} }

// Flatten reshapes (N, ...) to (N, prod(...)). Backward restores the shape.
type Flatten struct {
	inShape []int
}

// NewFlatten returns a Flatten layer.
func NewFlatten() *Flatten { return &Flatten{} }

// Forward flattens all but the leading (batch) dimension.
func (f *Flatten) Forward(x *tensor.Tensor) *tensor.Tensor {
	f.inShape = x.Shape()
	n := x.Dim(0)
	return x.Reshape(n, x.Size()/n)
}

// Backward restores the cached input shape.
func (f *Flatten) Backward(grad *tensor.Tensor) *tensor.Tensor {
	if f.inShape == nil {
		panic("nn: Flatten.Backward before Forward")
	}
	return grad.Reshape(f.inShape...)
}

// Params returns nil; Flatten has no parameters.
func (f *Flatten) Params() []*Param { return nil }

// Activation is a parameter-free element-wise layer defined by a function
// and the derivative expressed in terms of the cached output.
type Activation struct {
	name  string
	fn    func(float64) float64
	deriv func(out float64) float64 // derivative as a function of the output
	out   *tensor.Tensor
}

// NewReLU returns max(0, x).
func NewReLU() *Activation {
	return &Activation{
		name: "relu",
		fn:   func(v float64) float64 { return math.Max(0, v) },
		deriv: func(out float64) float64 {
			if out > 0 {
				return 1
			}
			return 0
		},
	}
}

// NewTanh returns tanh(x); d/dx = 1 - out².
func NewTanh() *Activation {
	return &Activation{
		name:  "tanh",
		fn:    math.Tanh,
		deriv: func(out float64) float64 { return 1 - out*out },
	}
}

// NewSigmoid returns σ(x) = 1/(1+e^{-x}); d/dx = out·(1-out).
func NewSigmoid() *Activation {
	return &Activation{
		name:  "sigmoid",
		fn:    sigmoid,
		deriv: func(out float64) float64 { return out * (1 - out) },
	}
}

func sigmoid(v float64) float64 { return 1 / (1 + math.Exp(-v)) }

// Forward applies the activation element-wise.
func (a *Activation) Forward(x *tensor.Tensor) *tensor.Tensor {
	a.out = tensor.Apply(x, a.fn)
	return a.out
}

// Backward multiplies the upstream gradient by the local derivative.
func (a *Activation) Backward(grad *tensor.Tensor) *tensor.Tensor {
	if a.out == nil {
		panic(fmt.Sprintf("nn: %s.Backward before Forward", a.name))
	}
	out := tensor.New(grad.Shape()...)
	gd, od, rd := grad.Data(), a.out.Data(), out.Data()
	for i := range rd {
		rd[i] = gd[i] * a.deriv(od[i])
	}
	return out
}

// Params returns nil; activations have no parameters.
func (a *Activation) Params() []*Param { return nil }
