package nn

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/tensor"
)

func TestMaxPoolForwardKnown(t *testing.T) {
	x := tensor.FromSlice([]float64{
		1, 2, 5, 4,
		3, 0, 1, 1,
		9, 1, 2, 2,
		1, 1, 2, 8,
	}, 1, 1, 4, 4)
	p := NewMaxPool2D(2, 2)
	out := p.Forward(x)
	want := []float64{3, 5, 9, 8}
	for i, v := range want {
		if out.Data()[i] != v {
			t.Fatalf("MaxPool = %v, want %v", out.Data(), want)
		}
	}
}

func TestMaxPoolBackwardRoutesToArgmax(t *testing.T) {
	x := tensor.FromSlice([]float64{
		1, 2,
		3, 0,
	}, 1, 1, 2, 2)
	p := NewMaxPool2D(2, 2)
	p.Forward(x)
	grad := p.Backward(tensor.FromSlice([]float64{7}, 1, 1, 1, 1))
	// Max was at position (1,0) = flat index 2.
	want := []float64{0, 0, 7, 0}
	for i, v := range want {
		if grad.Data()[i] != v {
			t.Fatalf("grad = %v, want %v", grad.Data(), want)
		}
	}
}

func TestMaxPoolGradientNumeric(t *testing.T) {
	// Max is piecewise linear; away from ties the numeric check applies.
	rng := rand.New(rand.NewSource(1))
	p := NewMaxPool2D(2, 2)
	x := tensor.Randn(rng, 1, 2, 1, 4, 4) // continuous values: ties have measure 0
	checkLayerGradients(t, p, x, 1e-6)
}

func TestMaxPoolIsUpperBoundOfAvgPool(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	x := tensor.Randn(rng, 1, 1, 1, 8, 8)
	mp := NewMaxPool2D(4, 4)
	ap := NewAvgPool2D(4, 4)
	mx := mp.Forward(x)
	av := ap.Forward(x)
	for i := range mx.Data() {
		if mx.Data()[i] < av.Data()[i] {
			t.Fatal("window max below window mean")
		}
	}
}

func TestDropoutEvaluationIsIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	d := NewDropout(rng, 0.5)
	d.SetTraining(false)
	x := tensor.Randn(rng, 1, 4, 4)
	if tensor.MaxAbsDiff(d.Forward(x), x) != 0 {
		t.Fatal("evaluation dropout not identity")
	}
}

func TestDropoutTrainingPreservesExpectation(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	d := NewDropout(rng, 0.3)
	x := tensor.Ones(1, 100, 100)
	sum := 0.0
	const reps = 20
	for r := 0; r < reps; r++ {
		sum += d.Forward(x).Sum()
	}
	mean := sum / (reps * 10000)
	if math.Abs(mean-1) > 0.02 {
		t.Fatalf("inverted dropout expectation = %g, want 1", mean)
	}
}

func TestDropoutZeroesFraction(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	d := NewDropout(rng, 0.4)
	x := tensor.Ones(1, 200, 200)
	out := d.Forward(x)
	zeros := 0
	for _, v := range out.Data() {
		if v == 0 {
			zeros++
		}
	}
	frac := float64(zeros) / float64(out.Size())
	if math.Abs(frac-0.4) > 0.02 {
		t.Fatalf("dropped fraction = %g, want 0.4", frac)
	}
}

func TestDropoutBackwardUsesSameMask(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	d := NewDropout(rng, 0.5)
	x := tensor.Ones(1, 10, 10)
	out := d.Forward(x)
	grad := d.Backward(tensor.Ones(10, 10))
	// Gradient must be nonzero exactly where the forward output is.
	for i := range out.Data() {
		if (out.Data()[i] == 0) != (grad.Data()[i] == 0) {
			t.Fatal("backward mask differs from forward mask")
		}
	}
}

func TestDropoutRejectsBadRate(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, rate := range []float64{-0.1, 1.0, 1.5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("rate %g accepted", rate)
				}
			}()
			NewDropout(rng, rate)
		}()
	}
}

func TestClipGradNorm(t *testing.T) {
	p := NewParam("w", tensor.FromSlice([]float64{0, 0}, 2))
	p.Grad.CopyFrom(tensor.FromSlice([]float64{3, 4}, 2)) // norm 5
	pre := ClipGradNorm([]*Param{p}, 1)
	if math.Abs(pre-5) > 1e-12 {
		t.Fatalf("pre-clip norm = %g, want 5", pre)
	}
	post := math.Hypot(p.Grad.Data()[0], p.Grad.Data()[1])
	if math.Abs(post-1) > 1e-12 {
		t.Fatalf("post-clip norm = %g, want 1", post)
	}
	// Direction preserved.
	if math.Abs(p.Grad.Data()[0]/p.Grad.Data()[1]-0.75) > 1e-12 {
		t.Fatal("clip changed gradient direction")
	}
}

func TestClipGradNormNoOpBelowThreshold(t *testing.T) {
	p := NewParam("w", tensor.FromSlice([]float64{0}, 1))
	p.Grad.Data()[0] = 0.5
	ClipGradNorm([]*Param{p}, 1)
	if p.Grad.Data()[0] != 0.5 {
		t.Fatal("clip modified a small gradient")
	}
}

func TestClipGradNormPanicsOnBadMax(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for maxNorm 0")
		}
	}()
	ClipGradNorm(nil, 0)
}
