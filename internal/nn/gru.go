package nn

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/tensor"
)

// Recurrent is the interface the BS-side sequence model satisfies; both
// LSTM and GRU implement it, letting the split model treat the recurrent
// core as an ablatable design choice.
type Recurrent interface {
	Layer
	InputDim() int
	HiddenDim() int
}

// InputDim returns the per-step input width.
func (l *LSTM) InputDim() int { return l.InDim }

// HiddenDim returns the hidden-state width.
func (l *LSTM) HiddenDim() int { return l.Hidden }

// GRU is a gated recurrent unit over (N, T, D) sequences returning the
// final hidden state (N, H) — the lighter alternative to the LSTM with
// three gates instead of four and no cell state.
//
// Gate layout in the packed matrices is [reset, update, candidate], with
// the reset gate applied to the *projected* previous hidden state
// (h·Whn + bh_n), the convention that allows a single packed
// hidden-to-hidden product per step.
type GRU struct {
	Wx *Param // (D, 3H)
	Wh *Param // (H, 3H)
	Bx *Param // (1, 3H)
	Bh *Param // (1, 3H)

	InDim, Hidden int

	// BPTT caches; instance-owned, reused across steps (see LSTM).
	seqLen, batch int
	xs            []*tensor.Tensor // per-step input (N, D)
	hs            []*tensor.Tensor // hs[0] = h_{-1} = 0
	gateR         []*tensor.Tensor
	gateZ         []*tensor.Tensor
	gateN         []*tensor.Tensor
	hnPre         []*tensor.Tensor // h_{t-1}·Whn + bh_n (pre reset gate)

	zx, zh           *tensor.Tensor // (N, 3H) forward scratch
	dax, dah, dhNext *tensor.Tensor // backward scratch
	dxt, wgx, wgh    *tensor.Tensor
	dh, dx           *tensor.Tensor
}

// NewGRU returns a GRU with Glorot-uniform weights.
func NewGRU(rng *rand.Rand, inDim, hidden int) *GRU {
	limitX := math.Sqrt(6.0 / float64(inDim+3*hidden))
	limitH := math.Sqrt(6.0 / float64(hidden+3*hidden))
	return &GRU{
		Wx:     NewParam("gru.wx", tensor.RandUniform(rng, -limitX, limitX, inDim, 3*hidden)),
		Wh:     NewParam("gru.wh", tensor.RandUniform(rng, -limitH, limitH, hidden, 3*hidden)),
		Bx:     NewParam("gru.bx", tensor.New(1, 3*hidden)),
		Bh:     NewParam("gru.bh", tensor.New(1, 3*hidden)),
		InDim:  inDim,
		Hidden: hidden,
	}
}

// InputDim returns the per-step input width.
func (g *GRU) InputDim() int { return g.InDim }

// HiddenDim returns the hidden-state width.
func (g *GRU) HiddenDim() int { return g.Hidden }

func (g *GRU) ensureScratch(n, T int) {
	if g.batch == n && g.seqLen == T && g.xs != nil {
		return
	}
	g.batch, g.seqLen = n, T
	alloc := func(count, d0, d1 int) []*tensor.Tensor {
		ts := make([]*tensor.Tensor, count)
		for i := range ts {
			ts[i] = tensor.New(d0, d1)
		}
		return ts
	}
	hid := g.Hidden
	g.xs = alloc(T, n, g.InDim)
	g.hs = alloc(T+1, n, hid)
	g.gateR = alloc(T, n, hid)
	g.gateZ = alloc(T, n, hid)
	g.gateN = alloc(T, n, hid)
	g.hnPre = alloc(T, n, hid)
	g.zx = tensor.New(n, 3*hid)
	g.zh = tensor.New(n, 3*hid)
	g.dax = tensor.New(n, 3*hid)
	g.dah = tensor.New(n, 3*hid)
	g.dhNext = tensor.New(n, hid)
	g.dxt = tensor.New(n, g.InDim)
	g.wgx = tensor.New(g.InDim, 3*hid)
	g.wgh = tensor.New(hid, 3*hid)
	g.dh = tensor.New(n, hid)
	g.dx = tensor.New(n, T, g.InDim)
}

// Forward consumes a (N, T, D) sequence and returns the final hidden
// state (N, H).
func (g *GRU) Forward(x *tensor.Tensor) *tensor.Tensor {
	if x.Rank() != 3 || x.Dim(2) != g.InDim {
		panic(fmt.Sprintf("nn: GRU input shape %v, want (N, T, %d)", x.Shape(), g.InDim))
	}
	n, T, hid := x.Dim(0), x.Dim(1), g.Hidden
	g.ensureScratch(n, T)
	g.hs[0].Zero()

	xd := x.Data()
	for t := 0; t < T; t++ {
		xt := g.xs[t]
		for i := 0; i < n; i++ {
			copy(xt.Data()[i*g.InDim:(i+1)*g.InDim], xd[(i*T+t)*g.InDim:(i*T+t+1)*g.InDim])
		}

		tensor.MatMulInto(g.zx, xt, g.Wx.Value)      // (N, 3H)
		tensor.MatMulInto(g.zh, g.hs[t], g.Wh.Value) // (N, 3H)
		bx, bh := g.Bx.Value.Data(), g.Bh.Value.Data()

		r, z, nn, pre := g.gateR[t], g.gateZ[t], g.gateN[t], g.hnPre[t]
		hNew := g.hs[t+1]
		rD, zD, nD, pD, hD := r.Data(), z.Data(), nn.Data(), pre.Data(), hNew.Data()
		hPrev := g.hs[t].Data()
		for i := 0; i < n; i++ {
			xrow := g.zx.Data()[i*3*hid : (i+1)*3*hid]
			hrow := g.zh.Data()[i*3*hid : (i+1)*3*hid]
			for j := 0; j < hid; j++ {
				rv := sigmoid(xrow[j] + bx[j] + hrow[j] + bh[j])
				zv := sigmoid(xrow[hid+j] + bx[hid+j] + hrow[hid+j] + bh[hid+j])
				pv := hrow[2*hid+j] + bh[2*hid+j]
				nv := math.Tanh(xrow[2*hid+j] + bx[2*hid+j] + rv*pv)
				k := i*hid + j
				rD[k], zD[k], nD[k], pD[k] = rv, zv, nv, pv
				hD[k] = (1-zv)*nv + zv*hPrev[k]
			}
		}
	}
	return g.hs[T]
}

// Backward runs BPTT from the gradient of the final hidden state and
// returns the input-sequence gradient (N, T, D).
func (g *GRU) Backward(grad *tensor.Tensor) *tensor.Tensor {
	if g.xs == nil {
		panic("nn: GRU.Backward before Forward")
	}
	n, T, hid := g.batch, g.seqLen, g.Hidden
	if grad.Rank() != 2 || grad.Dim(0) != n || grad.Dim(1) != hid {
		panic(fmt.Sprintf("nn: GRU gradient shape %v, want (%d, %d)", grad.Shape(), n, hid))
	}
	dx := g.dx
	dh := g.dh
	dh.CopyFrom(grad)

	for t := T - 1; t >= 0; t-- {
		r, z, nn, pre := g.gateR[t], g.gateZ[t], g.gateN[t], g.hnPre[t]
		hPrev := g.hs[t]

		// dax packs [dar, daz, dan] (pre-activation input-side grads);
		// dah packs [dar, daz, d(hnPre)] (hidden-side grads).
		dax, dah, dhNext := g.dax, g.dah, g.dhNext

		rD, zD, nD, pD := r.Data(), z.Data(), nn.Data(), pre.Data()
		hpD, dhD, dnD := hPrev.Data(), dh.Data(), dhNext.Data()
		daxD, dahD := dax.Data(), dah.Data()
		for i := 0; i < n; i++ {
			for j := 0; j < hid; j++ {
				k := i*hid + j
				rv, zv, nv, pv := rD[k], zD[k], nD[k], pD[k]
				dhv := dhD[k]

				dz := dhv * (hpD[k] - nv)
				dn := dhv * (1 - zv)
				dhPrev := dhv * zv

				dan := dn * (1 - nv*nv)
				dr := dan * pv
				dpre := dan * rv
				daz := dz * zv * (1 - zv)
				dar := dr * rv * (1 - rv)

				xrow := daxD[i*3*hid : (i+1)*3*hid]
				hrow := dahD[i*3*hid : (i+1)*3*hid]
				xrow[j], xrow[hid+j], xrow[2*hid+j] = dar, daz, dan
				hrow[j], hrow[hid+j], hrow[2*hid+j] = dar, daz, dpre

				dnD[k] = dhPrev
			}
		}

		tensor.MatMulTransAInto(g.wgx, g.xs[t], dax)
		g.Wx.Grad.AddInPlace(g.wgx)
		tensor.MatMulTransAInto(g.wgh, hPrev, dah)
		g.Wh.Grad.AddInPlace(g.wgh)
		bxg, bhg := g.Bx.Grad.Data(), g.Bh.Grad.Data()
		for i := 0; i < n; i++ {
			xrow := daxD[i*3*hid : (i+1)*3*hid]
			hrow := dahD[i*3*hid : (i+1)*3*hid]
			for j := range xrow {
				bxg[j] += xrow[j]
				bhg[j] += hrow[j]
			}
		}

		tensor.MatMulTransBInto(g.dxt, dax, g.Wx.Value)
		dxtD := g.dxt.Data()
		for i := 0; i < n; i++ {
			copy(dx.Data()[(i*T+t)*g.InDim:(i*T+t+1)*g.InDim], dxtD[i*g.InDim:(i+1)*g.InDim])
		}
		tensor.MatMulTransBInto(dh, dah, g.Wh.Value)
		dh.AddInPlace(dhNext)
	}
	return dx
}

// Params returns the packed parameters.
func (g *GRU) Params() []*Param { return []*Param{g.Wx, g.Wh, g.Bx, g.Bh} }
