package nn

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/tensor"
)

// MaxPool2D is the max-pooling counterpart of AvgPool2D, provided as a
// compression-stage ablation: unlike the average, a window maximum is not
// an unbiased payload summary, and (unlike average pooling) it is not a
// linear map — the comparison quantifies how much that matters.
type MaxPool2D struct {
	PH, PW  int
	argmax  []int
	inShape []int

	out, gradX *tensor.Tensor // instance-owned scratch
}

// NewMaxPool2D returns a max-pooling layer with the given window.
func NewMaxPool2D(ph, pw int) *MaxPool2D { return &MaxPool2D{PH: ph, PW: pw} }

// Forward pools each window to its maximum.
func (p *MaxPool2D) Forward(x *tensor.Tensor) *tensor.Tensor {
	p.out = tensor.EnsureShape(p.out, x.Dim(0), x.Dim(1), x.Dim(2)/p.PH, x.Dim(3)/p.PW)
	if cap(p.argmax) < p.out.Size() {
		p.argmax = make([]int, p.out.Size())
	}
	p.argmax = p.argmax[:p.out.Size()]
	tensor.MaxPool2DInto(p.out, p.argmax, x, p.PH, p.PW)
	p.inShape = x.Shape()
	return p.out
}

// Backward routes each gradient to its window's argmax.
func (p *MaxPool2D) Backward(grad *tensor.Tensor) *tensor.Tensor {
	if p.argmax == nil {
		panic("nn: MaxPool2D.Backward before Forward")
	}
	p.gradX = tensor.EnsureShape(p.gradX, p.inShape...)
	tensor.MaxPool2DBackwardInto(p.gradX, grad, p.argmax)
	return p.gradX
}

// Params returns nil; pooling has no parameters.
func (p *MaxPool2D) Params() []*Param { return nil }

// Dropout zeroes each activation independently with probability Rate
// during training and scales the survivors by 1/(1−Rate) (inverted
// dropout), so evaluation needs no rescaling. Call SetTraining(false)
// before validation/inference.
type Dropout struct {
	Rate     float64
	rng      *rand.Rand
	training bool
	mask     []float64

	out, gout *tensor.Tensor // instance-owned scratch
}

// NewDropout returns a dropout layer; rate must lie in [0, 1).
func NewDropout(rng *rand.Rand, rate float64) *Dropout {
	if rate < 0 || rate >= 1 {
		panic(fmt.Sprintf("nn: dropout rate %g outside [0, 1)", rate))
	}
	return &Dropout{Rate: rate, rng: rng, training: true}
}

// SetTraining toggles between the stochastic (training) and identity
// (evaluation) behaviours.
func (d *Dropout) SetTraining(training bool) { d.training = training }

// Forward applies the mask (training) or the identity (evaluation).
func (d *Dropout) Forward(x *tensor.Tensor) *tensor.Tensor {
	if !d.training || d.Rate == 0 {
		d.mask = nil
		return x
	}
	keep := 1 - d.Rate
	scale := 1 / keep
	if cap(d.mask) < x.Size() {
		d.mask = make([]float64, x.Size())
	}
	d.mask = d.mask[:x.Size()]
	d.out = tensor.EnsureShape(d.out, x.Shape()...)
	xd, od := x.Data(), d.out.Data()
	for i := range xd {
		if d.rng.Float64() < keep {
			d.mask[i] = scale
			od[i] = xd[i] * scale
		} else {
			d.mask[i] = 0
			od[i] = 0
		}
	}
	return d.out
}

// Backward applies the same mask to the gradient.
func (d *Dropout) Backward(grad *tensor.Tensor) *tensor.Tensor {
	if d.mask == nil {
		return grad
	}
	d.gout = tensor.EnsureShape(d.gout, grad.Shape()...)
	gd, od := grad.Data(), d.gout.Data()
	for i := range gd {
		od[i] = gd[i] * d.mask[i]
	}
	return d.gout
}

// Params returns nil; dropout has no parameters.
func (d *Dropout) Params() []*Param { return nil }

// ClipGradNorm rescales all gradients in place so their global L2 norm
// does not exceed maxNorm, the standard guard against exploding RNN
// gradients. It returns the pre-clip norm.
func ClipGradNorm(params []*Param, maxNorm float64) float64 {
	if maxNorm <= 0 {
		panic(fmt.Sprintf("nn: non-positive clip norm %g", maxNorm))
	}
	total := 0.0
	for _, p := range params {
		for _, g := range p.Grad.Data() {
			total += g * g
		}
	}
	norm := math.Sqrt(total)
	if norm > maxNorm {
		scale := maxNorm / norm
		for _, p := range params {
			p.Grad.ScaleInPlace(scale)
		}
	}
	return norm
}
