package nn

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/tensor"
)

// MaxPool2D is the max-pooling counterpart of AvgPool2D, provided as a
// compression-stage ablation: unlike the average, a window maximum is not
// an unbiased payload summary, and (unlike average pooling) it is not a
// linear map — the comparison quantifies how much that matters.
type MaxPool2D struct {
	PH, PW  int
	argmax  []int
	inShape []int
}

// NewMaxPool2D returns a max-pooling layer with the given window.
func NewMaxPool2D(ph, pw int) *MaxPool2D { return &MaxPool2D{PH: ph, PW: pw} }

// Forward pools each window to its maximum.
func (p *MaxPool2D) Forward(x *tensor.Tensor) *tensor.Tensor {
	out, argmax := tensor.MaxPool2D(x, p.PH, p.PW)
	p.argmax = argmax
	p.inShape = x.Shape()
	return out
}

// Backward routes each gradient to its window's argmax.
func (p *MaxPool2D) Backward(grad *tensor.Tensor) *tensor.Tensor {
	if p.argmax == nil {
		panic("nn: MaxPool2D.Backward before Forward")
	}
	return tensor.MaxPool2DBackward(grad, p.argmax, p.inShape)
}

// Params returns nil; pooling has no parameters.
func (p *MaxPool2D) Params() []*Param { return nil }

// Dropout zeroes each activation independently with probability Rate
// during training and scales the survivors by 1/(1−Rate) (inverted
// dropout), so evaluation needs no rescaling. Call SetTraining(false)
// before validation/inference.
type Dropout struct {
	Rate     float64
	rng      *rand.Rand
	training bool
	mask     []float64
}

// NewDropout returns a dropout layer; rate must lie in [0, 1).
func NewDropout(rng *rand.Rand, rate float64) *Dropout {
	if rate < 0 || rate >= 1 {
		panic(fmt.Sprintf("nn: dropout rate %g outside [0, 1)", rate))
	}
	return &Dropout{Rate: rate, rng: rng, training: true}
}

// SetTraining toggles between the stochastic (training) and identity
// (evaluation) behaviours.
func (d *Dropout) SetTraining(training bool) { d.training = training }

// Forward applies the mask (training) or the identity (evaluation).
func (d *Dropout) Forward(x *tensor.Tensor) *tensor.Tensor {
	if !d.training || d.Rate == 0 {
		d.mask = nil
		return x
	}
	keep := 1 - d.Rate
	scale := 1 / keep
	d.mask = make([]float64, x.Size())
	out := tensor.New(x.Shape()...)
	xd, od := x.Data(), out.Data()
	for i := range xd {
		if d.rng.Float64() < keep {
			d.mask[i] = scale
			od[i] = xd[i] * scale
		}
	}
	return out
}

// Backward applies the same mask to the gradient.
func (d *Dropout) Backward(grad *tensor.Tensor) *tensor.Tensor {
	if d.mask == nil {
		return grad
	}
	out := tensor.New(grad.Shape()...)
	gd, od := grad.Data(), out.Data()
	for i := range gd {
		od[i] = gd[i] * d.mask[i]
	}
	return out
}

// Params returns nil; dropout has no parameters.
func (d *Dropout) Params() []*Param { return nil }

// ClipGradNorm rescales all gradients in place so their global L2 norm
// does not exceed maxNorm, the standard guard against exploding RNN
// gradients. It returns the pre-clip norm.
func ClipGradNorm(params []*Param, maxNorm float64) float64 {
	if maxNorm <= 0 {
		panic(fmt.Sprintf("nn: non-positive clip norm %g", maxNorm))
	}
	total := 0.0
	for _, p := range params {
		for _, g := range p.Grad.Data() {
			total += g * g
		}
	}
	norm := math.Sqrt(total)
	if norm > maxNorm {
		scale := maxNorm / norm
		for _, p := range params {
			p.Grad.ScaleInPlace(scale)
		}
	}
	return norm
}
