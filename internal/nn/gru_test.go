package nn

import (
	"math/rand"
	"testing"

	"repro/internal/tensor"
)

func TestGRUForwardShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g := NewGRU(rng, 5, 7)
	x := tensor.Randn(rng, 1, 3, 4, 5)
	h := g.Forward(x)
	if h.Rank() != 2 || h.Dim(0) != 3 || h.Dim(1) != 7 {
		t.Fatalf("GRU output shape = %v", h.Shape())
	}
	if g.InputDim() != 5 || g.HiddenDim() != 7 {
		t.Fatalf("dims = %d/%d", g.InputDim(), g.HiddenDim())
	}
}

func TestGRUOutputBounded(t *testing.T) {
	// h is a convex combination of tanh outputs and zero-initialised
	// state, so |h| < 1.
	rng := rand.New(rand.NewSource(2))
	g := NewGRU(rng, 3, 5)
	x := tensor.Randn(rng, 5, 8, 6, 3)
	h := g.Forward(x)
	if h.Max() >= 1 || h.Min() <= -1 {
		t.Fatalf("GRU hidden escaped (-1,1): [%g, %g]", h.Min(), h.Max())
	}
}

func TestGRUGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := NewGRU(rng, 3, 4)
	x := tensor.Randn(rng, 1, 2, 3, 3)
	checkLayerGradients(t, g, x, 1e-5)
}

func TestGRUDeterministicForward(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	g := NewGRU(rng, 2, 3)
	x := tensor.Randn(rng, 1, 2, 4, 2)
	h1 := g.Forward(x).Clone() // Clone: layers reuse their output buffer
	h2 := g.Forward(x)
	if tensor.MaxAbsDiff(h1, h2) != 0 {
		t.Fatal("GRU forward not deterministic")
	}
}

func TestGRUBackwardBeforeForwardPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g := NewGRU(rng, 2, 3)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	g.Backward(tensor.Ones(1, 3))
}

func TestGRUFewerParamsThanLSTM(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	g := NewGRU(rng, 10, 8)
	l := NewLSTM(rng, 10, 8)
	if CountParams(g.Params()) >= CountParams(l.Params()) {
		t.Fatalf("GRU (%d) should be smaller than LSTM (%d)",
			CountParams(g.Params()), CountParams(l.Params()))
	}
}

func TestRecurrentInterface(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, r := range []Recurrent{NewLSTM(rng, 4, 6), NewGRU(rng, 4, 6)} {
		if r.InputDim() != 4 || r.HiddenDim() != 6 {
			t.Fatalf("%T dims = %d/%d", r, r.InputDim(), r.HiddenDim())
		}
		x := tensor.Randn(rng, 1, 2, 3, 4)
		h := r.Forward(x)
		if h.Dim(0) != 2 || h.Dim(1) != 6 {
			t.Fatalf("%T output %v", r, h.Shape())
		}
	}
}

func TestGRUTrainsTinyRegression(t *testing.T) {
	// GRU + head must fit "predict last step's first feature".
	rng := rand.New(rand.NewSource(8))
	g := NewGRU(rng, 2, 8)
	head := NewDense(rng, 8, 1)
	params := append(g.Params(), head.Params()...)

	x := tensor.Randn(rng, 1, 32, 3, 2)
	target := tensor.New(32, 1)
	for i := 0; i < 32; i++ {
		target.Data()[i] = x.At(i, 2, 0)
	}

	var loss float64
	lr := 0.05
	for step := 0; step < 400; step++ {
		ZeroGrads(params)
		pred := head.Forward(g.Forward(x))
		var grad *tensor.Tensor
		loss, grad = MSE(pred, target)
		g.Backward(head.Backward(grad))
		for _, p := range params {
			p.Value.AddScaledInPlace(p.Grad, -lr)
		}
	}
	if loss > 0.05 {
		t.Fatalf("GRU failed to fit: loss %g", loss)
	}
}
