package nn

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/tensor"
)

// checkLayerGradients verifies a layer's Backward against central
// differences, both for the input gradient and every parameter gradient.
// The loss is sum(forward(x)) so the upstream gradient is all-ones.
func checkLayerGradients(t *testing.T, layer Layer, x *tensor.Tensor, tol float64) {
	t.Helper()
	const eps = 1e-6

	out := layer.Forward(x)
	ZeroGrads(layer.Params())
	gradIn := layer.Backward(tensor.Ones(out.Shape()...))

	// Input gradient.
	numIn := tensor.New(x.Shape()...)
	for i := range x.Data() {
		orig := x.Data()[i]
		x.Data()[i] = orig + eps
		plus := layer.Forward(x).Sum()
		x.Data()[i] = orig - eps
		minus := layer.Forward(x).Sum()
		x.Data()[i] = orig
		numIn.Data()[i] = (plus - minus) / (2 * eps)
	}
	if d := tensor.MaxAbsDiff(gradIn, numIn); d > tol {
		t.Fatalf("input gradient off by %g (tol %g)", d, tol)
	}

	// Parameter gradients.
	for pi, p := range layer.Params() {
		for i := range p.Value.Data() {
			orig := p.Value.Data()[i]
			p.Value.Data()[i] = orig + eps
			plus := layer.Forward(x).Sum()
			p.Value.Data()[i] = orig - eps
			minus := layer.Forward(x).Sum()
			p.Value.Data()[i] = orig
			num := (plus - minus) / (2 * eps)
			got := p.Grad.Data()[i]
			if math.Abs(got-num) > tol {
				t.Fatalf("param %d (%s) grad[%d] = %g, numeric %g", pi, p.Name, i, got, num)
			}
		}
	}
}

func TestDenseForwardKnown(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	d := NewDense(rng, 2, 2)
	d.W.Value.CopyFrom(tensor.FromSlice([]float64{1, 2, 3, 4}, 2, 2))
	d.B.Value.CopyFrom(tensor.FromSlice([]float64{10, 20}, 1, 2))
	out := d.Forward(tensor.FromSlice([]float64{1, 1}, 1, 2))
	if out.At(0, 0) != 14 || out.At(0, 1) != 26 {
		t.Fatalf("Dense forward = %v", out.Data())
	}
}

func TestDenseGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	d := NewDense(rng, 4, 3)
	x := tensor.Randn(rng, 1, 5, 4)
	checkLayerGradients(t, d, x, 1e-6)
}

func TestDenseBackwardBeforeForwardPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	d := NewDense(rng, 2, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("Backward before Forward did not panic")
		}
	}()
	d.Backward(tensor.Ones(1, 2))
}

func TestActivationsForward(t *testing.T) {
	x := tensor.FromSlice([]float64{-2, 0, 2}, 1, 3)
	relu := NewReLU().Forward(x)
	if relu.At(0, 0) != 0 || relu.At(0, 2) != 2 {
		t.Fatalf("ReLU = %v", relu.Data())
	}
	sig := NewSigmoid().Forward(x)
	if math.Abs(sig.At(0, 1)-0.5) > 1e-12 {
		t.Fatalf("σ(0) = %g", sig.At(0, 1))
	}
	th := NewTanh().Forward(x)
	if math.Abs(th.At(0, 2)-math.Tanh(2)) > 1e-12 {
		t.Fatalf("tanh(2) = %g", th.At(0, 2))
	}
}

func TestActivationGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for _, tc := range []struct {
		name  string
		layer Layer
	}{
		{"tanh", NewTanh()},
		{"sigmoid", NewSigmoid()},
	} {
		x := tensor.Randn(rng, 1, 3, 4)
		t.Run(tc.name, func(t *testing.T) {
			checkLayerGradients(t, tc.layer, x, 1e-6)
		})
	}
	// ReLU: keep inputs away from the kink at 0.
	x := tensor.RandUniform(rng, 0.5, 2.0, 3, 4)
	for i := 0; i < x.Size(); i += 2 {
		x.Data()[i] = -x.Data()[i]
	}
	checkLayerGradients(t, NewReLU(), x, 1e-6)
}

func TestFlattenRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	f := NewFlatten()
	x := tensor.Randn(rng, 1, 2, 3, 4, 5)
	y := f.Forward(x)
	if y.Rank() != 2 || y.Dim(0) != 2 || y.Dim(1) != 60 {
		t.Fatalf("flatten shape = %v", y.Shape())
	}
	back := f.Backward(tensor.Ones(2, 60))
	if back.Rank() != 4 {
		t.Fatalf("unflatten shape = %v", back.Shape())
	}
}

func TestConv2DLayerGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	c := NewConv2DSame(rng, 1, 2, 3)
	x := tensor.Randn(rng, 1, 2, 1, 6, 6)
	checkLayerGradients(t, c, x, 1e-5)
}

func TestAvgPoolLayerGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	p := NewAvgPool2D(2, 2)
	x := tensor.Randn(rng, 1, 2, 1, 4, 4)
	checkLayerGradients(t, p, x, 1e-6)
}

func TestLSTMForwardShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	l := NewLSTM(rng, 5, 7)
	x := tensor.Randn(rng, 1, 3, 4, 5) // N=3, T=4, D=5
	h := l.Forward(x)
	if h.Rank() != 2 || h.Dim(0) != 3 || h.Dim(1) != 7 {
		t.Fatalf("LSTM output shape = %v", h.Shape())
	}
}

func TestLSTMOutputBounded(t *testing.T) {
	// h = o·tanh(c) with o ∈ (0,1) so |h| < 1 always.
	rng := rand.New(rand.NewSource(9))
	l := NewLSTM(rng, 3, 5)
	x := tensor.Randn(rng, 10, 8, 6, 3)
	h := l.Forward(x)
	if h.Max() >= 1 || h.Min() <= -1 {
		t.Fatalf("LSTM hidden escaped (-1,1): [%g, %g]", h.Min(), h.Max())
	}
}

func TestLSTMGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	l := NewLSTM(rng, 3, 4)
	x := tensor.Randn(rng, 1, 2, 3, 3) // small for numeric check cost
	checkLayerGradients(t, l, x, 1e-5)
}

func TestLSTMStatefulnessResetsBetweenForwards(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	l := NewLSTM(rng, 2, 3)
	x := tensor.Randn(rng, 1, 2, 4, 2)
	h1 := l.Forward(x).Clone() // Clone: layers reuse their output buffer
	h2 := l.Forward(x)
	if tensor.MaxAbsDiff(h1, h2) != 0 {
		t.Fatal("LSTM forward not deterministic / state leaked across calls")
	}
}

func TestSequentialComposition(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	model := NewSequential(
		NewDense(rng, 4, 8),
		NewTanh(),
		NewDense(rng, 8, 1),
	)
	x := tensor.Randn(rng, 1, 6, 4)
	out := model.Forward(x)
	if out.Dim(0) != 6 || out.Dim(1) != 1 {
		t.Fatalf("sequential output shape = %v", out.Shape())
	}
	if got := len(model.Params()); got != 4 {
		t.Fatalf("sequential params = %d, want 4", got)
	}
	checkLayerGradients(t, model, x, 1e-5)
}

func TestMSEKnown(t *testing.T) {
	pred := tensor.FromSlice([]float64{1, 2}, 2, 1)
	target := tensor.FromSlice([]float64{0, 4}, 2, 1)
	loss, grad := MSE(pred, target)
	if math.Abs(loss-2.5) > 1e-12 { // (1 + 4)/2
		t.Fatalf("MSE = %g, want 2.5", loss)
	}
	if math.Abs(grad.At(0, 0)-1) > 1e-12 || math.Abs(grad.At(1, 0)+2) > 1e-12 {
		t.Fatalf("MSE grad = %v", grad.Data())
	}
}

func TestMSEGradientNumeric(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	pred := tensor.Randn(rng, 1, 5, 1)
	target := tensor.Randn(rng, 1, 5, 1)
	_, grad := MSE(pred, target)
	const eps = 1e-6
	for i := range pred.Data() {
		orig := pred.Data()[i]
		pred.Data()[i] = orig + eps
		plus, _ := MSE(pred, target)
		pred.Data()[i] = orig - eps
		minus, _ := MSE(pred, target)
		pred.Data()[i] = orig
		num := (plus - minus) / (2 * eps)
		if math.Abs(grad.Data()[i]-num) > 1e-6 {
			t.Fatalf("MSE grad[%d] = %g, numeric %g", i, grad.Data()[i], num)
		}
	}
}

func TestRMSEIsSqrtOfMSE(t *testing.T) {
	pred := tensor.FromSlice([]float64{3}, 1, 1)
	target := tensor.FromSlice([]float64{0}, 1, 1)
	if got := RMSE(pred, target); math.Abs(got-3) > 1e-12 {
		t.Fatalf("RMSE = %g, want 3", got)
	}
}

func TestCopyParams(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	a := NewDense(rng, 3, 2)
	b := NewDense(rng, 3, 2)
	if err := CopyParams(b.Params(), a.Params()); err != nil {
		t.Fatal(err)
	}
	if tensor.MaxAbsDiff(a.W.Value, b.W.Value) != 0 {
		t.Fatal("CopyParams did not copy weights")
	}
	c := NewDense(rng, 4, 2)
	if err := CopyParams(c.Params(), a.Params()); err == nil {
		t.Fatal("shape-mismatched CopyParams did not error")
	}
}

func TestCountParams(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	d := NewDense(rng, 10, 5)
	if got := CountParams(d.Params()); got != 55 {
		t.Fatalf("CountParams = %d, want 55", got)
	}
}

func TestZeroGrads(t *testing.T) {
	rng := rand.New(rand.NewSource(16))
	d := NewDense(rng, 2, 2)
	x := tensor.Randn(rng, 1, 3, 2)
	d.Forward(x)
	d.Backward(tensor.Ones(3, 2))
	if d.W.Grad.Norm2() == 0 {
		t.Fatal("gradient not accumulated")
	}
	ZeroGrads(d.Params())
	if d.W.Grad.Norm2() != 0 {
		t.Fatal("ZeroGrads did not reset")
	}
}
