// Package nn is a small neural-network library with hand-written
// reverse-mode gradients, sufficient to express the paper's split model:
// convolutional layers with average pooling on the UE side and an LSTM
// regression head on the BS side, trained with mini-batch SGD variants
// from internal/opt.
//
// Layers follow a stateful Forward/Backward protocol: Forward caches
// whatever intermediate values the gradient needs, and Backward must be
// called with the upstream gradient of the most recent Forward. This
// mirrors how the split-learning wire protocol works — the UE holds its
// activations while the BS computes and returns the cut-layer gradient.
package nn

import (
	"fmt"

	"repro/internal/tensor"
)

// Param is a trainable parameter tensor together with its gradient
// accumulator. Optimisers consume Params; layers expose them.
type Param struct {
	Name  string
	Value *tensor.Tensor
	Grad  *tensor.Tensor
}

// NewParam wraps a value tensor in a Param with a zero gradient of the
// same shape.
func NewParam(name string, value *tensor.Tensor) *Param {
	return &Param{Name: name, Value: value, Grad: tensor.New(value.Shape()...)}
}

// ZeroGrad resets the gradient accumulator.
func (p *Param) ZeroGrad() { p.Grad.Zero() }

// Layer is a differentiable computation stage.
//
// Backward consumes dL/d(output of the latest Forward) and returns
// dL/d(input), accumulating parameter gradients into Params() as a side
// effect. Implementations are single-threaded per instance.
type Layer interface {
	Forward(x *tensor.Tensor) *tensor.Tensor
	Backward(grad *tensor.Tensor) *tensor.Tensor
	Params() []*Param
}

// Sequential chains layers; the output of layer i feeds layer i+1.
type Sequential struct {
	Layers []Layer
}

// NewSequential builds a Sequential from the given layers.
func NewSequential(layers ...Layer) *Sequential { return &Sequential{Layers: layers} }

// Forward runs all layers in order.
func (s *Sequential) Forward(x *tensor.Tensor) *tensor.Tensor {
	for _, l := range s.Layers {
		x = l.Forward(x)
	}
	return x
}

// Backward runs all layers in reverse order.
func (s *Sequential) Backward(grad *tensor.Tensor) *tensor.Tensor {
	for i := len(s.Layers) - 1; i >= 0; i-- {
		grad = s.Layers[i].Backward(grad)
	}
	return grad
}

// Params returns the concatenated parameters of all layers.
func (s *Sequential) Params() []*Param {
	var ps []*Param
	for _, l := range s.Layers {
		ps = append(ps, l.Params()...)
	}
	return ps
}

// ZeroGrads resets the gradients of every parameter in params.
func ZeroGrads(params []*Param) {
	for _, p := range params {
		p.ZeroGrad()
	}
}

// CountParams returns the total number of scalar parameters.
func CountParams(params []*Param) int {
	n := 0
	for _, p := range params {
		n += p.Value.Size()
	}
	return n
}

// CopyParams copies parameter values from src to dst; the two lists must
// be shape-compatible and in the same order. Used to synchronise model
// replicas (e.g. monolithic reference vs split halves in tests).
func CopyParams(dst, src []*Param) error {
	if len(dst) != len(src) {
		return fmt.Errorf("nn: parameter count mismatch %d != %d", len(dst), len(src))
	}
	for i := range dst {
		if !dst[i].Value.SameShape(src[i].Value) {
			return fmt.Errorf("nn: parameter %d shape mismatch %v != %v",
				i, dst[i].Value.Shape(), src[i].Value.Shape())
		}
		dst[i].Value.CopyFrom(src[i].Value)
	}
	return nil
}
