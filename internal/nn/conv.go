package nn

import (
	"math"
	"math/rand"

	"repro/internal/tensor"
)

// Conv2D is a 2-D convolution layer in NCHW layout with bias.
type Conv2D struct {
	K    *Param // kernel (Cout, Cin, KH, KW)
	B    *Param // bias   (Cout)
	Spec tensor.Conv2DSpec
	in   *tensor.Tensor
}

// NewConv2D returns a convolution layer with He-normal initialised kernels
// (appropriate for the ReLU activations used by the UE CNN) and zero bias.
func NewConv2D(rng *rand.Rand, cin, cout, kh, kw int, spec tensor.Conv2DSpec) *Conv2D {
	fanIn := float64(cin * kh * kw)
	std := math.Sqrt(2.0 / fanIn)
	return &Conv2D{
		K:    NewParam("conv.k", tensor.Randn(rng, std, cout, cin, kh, kw)),
		B:    NewParam("conv.b", tensor.New(cout)),
		Spec: spec,
	}
}

// NewConv2DSame returns a stride-1 convolution that preserves spatial size
// for odd kernel sizes, as used by the UE-side CNN (the CNN output must be
// an N_H × N_W "image" so the pooling arithmetic of the paper applies).
func NewConv2DSame(rng *rand.Rand, cin, cout, k int) *Conv2D {
	return NewConv2D(rng, cin, cout, k, k, tensor.Conv2DSpec{
		StrideH: 1, StrideW: 1, PadH: k / 2, PadW: k / 2,
	})
}

// Forward computes the convolution.
func (c *Conv2D) Forward(x *tensor.Tensor) *tensor.Tensor {
	c.in = x
	return tensor.Conv2D(x, c.K.Value, c.B.Value.Data(), c.Spec)
}

// Backward accumulates kernel and bias gradients and returns the input
// gradient.
func (c *Conv2D) Backward(grad *tensor.Tensor) *tensor.Tensor {
	if c.in == nil {
		panic("nn: Conv2D.Backward before Forward")
	}
	gradX, gradK, gradB := tensor.Conv2DBackward(c.in, c.K.Value, grad, c.Spec)
	c.K.Grad.AddInPlace(gradK)
	bg := c.B.Grad.Data()
	for i, v := range gradB {
		bg[i] += v
	}
	return gradX
}

// Params returns the kernel and bias parameters.
func (c *Conv2D) Params() []*Param { return []*Param{c.K, c.B} }

// AvgPool2D is the paper's payload-compression stage: non-overlapping
// average pooling with window (PH, PW). Over a 40×40 CNN output a 40×40
// window yields the "one pixel image".
type AvgPool2D struct {
	PH, PW int
}

// NewAvgPool2D returns an average-pooling layer with the given window.
func NewAvgPool2D(ph, pw int) *AvgPool2D { return &AvgPool2D{PH: ph, PW: pw} }

// Forward pools each window to its mean.
func (p *AvgPool2D) Forward(x *tensor.Tensor) *tensor.Tensor {
	return tensor.AvgPool2D(x, p.PH, p.PW)
}

// Backward spreads the gradient uniformly over each window.
func (p *AvgPool2D) Backward(grad *tensor.Tensor) *tensor.Tensor {
	return tensor.AvgPool2DBackward(grad, p.PH, p.PW)
}

// Params returns nil; pooling has no parameters.
func (p *AvgPool2D) Params() []*Param { return nil }
