package nn

import (
	"math"
	"math/rand"

	"repro/internal/tensor"
)

// Conv2D is a 2-D convolution layer in NCHW layout with bias.
type Conv2D struct {
	K    *Param // kernel (Cout, Cin, KH, KW)
	B    *Param // bias   (Cout)
	Spec tensor.Conv2DSpec
	in   *tensor.Tensor

	out, gradX *tensor.Tensor // instance-owned scratch
}

// NewConv2D returns a convolution layer with He-normal initialised kernels
// (appropriate for the ReLU activations used by the UE CNN) and zero bias.
func NewConv2D(rng *rand.Rand, cin, cout, kh, kw int, spec tensor.Conv2DSpec) *Conv2D {
	fanIn := float64(cin * kh * kw)
	std := math.Sqrt(2.0 / fanIn)
	return &Conv2D{
		K:    NewParam("conv.k", tensor.Randn(rng, std, cout, cin, kh, kw)),
		B:    NewParam("conv.b", tensor.New(cout)),
		Spec: spec,
	}
}

// NewConv2DSame returns a stride-1 convolution that preserves spatial size
// for odd kernel sizes, as used by the UE-side CNN (the CNN output must be
// an N_H × N_W "image" so the pooling arithmetic of the paper applies).
func NewConv2DSame(rng *rand.Rand, cin, cout, k int) *Conv2D {
	return NewConv2D(rng, cin, cout, k, k, tensor.Conv2DSpec{
		StrideH: 1, StrideW: 1, PadH: k / 2, PadW: k / 2,
	})
}

// Forward computes the convolution into the layer's cached output.
func (c *Conv2D) Forward(x *tensor.Tensor) *tensor.Tensor {
	c.in = x
	oh, ow := c.Spec.OutSize(x.Dim(2), x.Dim(3), c.K.Value.Dim(2), c.K.Value.Dim(3))
	c.out = tensor.EnsureShape(c.out, x.Dim(0), c.K.Value.Dim(0), oh, ow)
	tensor.Conv2DInto(c.out, x, c.K.Value, c.B.Value.Data(), c.Spec)
	return c.out
}

// Backward accumulates kernel and bias gradients (directly into the
// parameter accumulators) and returns the input gradient.
func (c *Conv2D) Backward(grad *tensor.Tensor) *tensor.Tensor {
	if c.in == nil {
		panic("nn: Conv2D.Backward before Forward")
	}
	c.gradX = tensor.EnsureShape(c.gradX, c.in.Shape()...)
	tensor.Conv2DBackwardInto(c.gradX, c.K.Grad, c.B.Grad.Data(), c.in, c.K.Value, grad, c.Spec)
	return c.gradX
}

// Params returns the kernel and bias parameters.
func (c *Conv2D) Params() []*Param { return []*Param{c.K, c.B} }

// AvgPool2D is the paper's payload-compression stage: non-overlapping
// average pooling with window (PH, PW). Over a 40×40 CNN output a 40×40
// window yields the "one pixel image".
type AvgPool2D struct {
	PH, PW int

	out, gradX *tensor.Tensor // instance-owned scratch
}

// NewAvgPool2D returns an average-pooling layer with the given window.
func NewAvgPool2D(ph, pw int) *AvgPool2D { return &AvgPool2D{PH: ph, PW: pw} }

// Forward pools each window to its mean.
func (p *AvgPool2D) Forward(x *tensor.Tensor) *tensor.Tensor {
	p.out = tensor.EnsureShape(p.out, x.Dim(0), x.Dim(1), x.Dim(2)/p.PH, x.Dim(3)/p.PW)
	tensor.AvgPool2DInto(p.out, x, p.PH, p.PW)
	return p.out
}

// Backward spreads the gradient uniformly over each window.
func (p *AvgPool2D) Backward(grad *tensor.Tensor) *tensor.Tensor {
	p.gradX = tensor.EnsureShape(p.gradX,
		grad.Dim(0), grad.Dim(1), grad.Dim(2)*p.PH, grad.Dim(3)*p.PW)
	tensor.AvgPool2DBackwardInto(p.gradX, grad, p.PH, p.PW)
	return p.gradX
}

// Params returns nil; pooling has no parameters.
func (p *AvgPool2D) Params() []*Param { return nil }
