package nn

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/tensor"
)

// LSTM is a single-layer long short-term memory network over input
// sequences of shape (N, T, D), returning the final hidden state (N, H).
// This is the BS-side recurrent model of the paper: at each of the T = L
// time steps it consumes the concatenation of the pooled CNN output pixels
// and the RF received power, and its final state drives the regression
// head that predicts the future received power.
//
// Gate layout in the packed weight matrices is [input, forget, cell, output].
type LSTM struct {
	Wx *Param // (D, 4H)
	Wh *Param // (H, 4H)
	B  *Param // (1, 4H)

	InDim, Hidden int

	// Forward caches for BPTT; all buffers are instance-owned and reused
	// across steps once the (batch, seqLen) signature stabilises.
	seqLen  int
	batch   int
	xs      []*tensor.Tensor // per-step input (N, D)
	hs      []*tensor.Tensor // per-step hidden, hs[0] is h_{-1} = 0
	cs      []*tensor.Tensor // per-step cell,   cs[0] is c_{-1} = 0
	gateI   []*tensor.Tensor
	gateF   []*tensor.Tensor
	gateG   []*tensor.Tensor
	gateO   []*tensor.Tensor
	tanhCts []*tensor.Tensor

	z, z2           *tensor.Tensor // (N, 4H) pre-activation scratch
	dz, dxt, wgx    *tensor.Tensor // backward scratch
	wgh, dh, dc, dx *tensor.Tensor
}

// NewLSTM returns an LSTM with Glorot-uniform weights and the customary
// forget-gate bias of 1 (helps gradient flow early in training).
func NewLSTM(rng *rand.Rand, inDim, hidden int) *LSTM {
	limitX := math.Sqrt(6.0 / float64(inDim+4*hidden))
	limitH := math.Sqrt(6.0 / float64(hidden+4*hidden))
	l := &LSTM{
		Wx:     NewParam("lstm.wx", tensor.RandUniform(rng, -limitX, limitX, inDim, 4*hidden)),
		Wh:     NewParam("lstm.wh", tensor.RandUniform(rng, -limitH, limitH, hidden, 4*hidden)),
		B:      NewParam("lstm.b", tensor.New(1, 4*hidden)),
		InDim:  inDim,
		Hidden: hidden,
	}
	for j := hidden; j < 2*hidden; j++ {
		l.B.Value.Set(1, 0, j) // forget gate slice
	}
	return l
}

// ensureScratch (re)builds the per-step buffer sets when the batch or
// sequence length changes; otherwise the cached tensors are reused as-is.
func (l *LSTM) ensureScratch(n, T int) {
	if l.batch == n && l.seqLen == T && l.xs != nil {
		return
	}
	l.batch, l.seqLen = n, T
	alloc := func(count, d0, d1 int) []*tensor.Tensor {
		ts := make([]*tensor.Tensor, count)
		for i := range ts {
			ts[i] = tensor.New(d0, d1)
		}
		return ts
	}
	hid := l.Hidden
	l.xs = alloc(T, n, l.InDim)
	l.hs = alloc(T+1, n, hid)
	l.cs = alloc(T+1, n, hid)
	l.gateI = alloc(T, n, hid)
	l.gateF = alloc(T, n, hid)
	l.gateG = alloc(T, n, hid)
	l.gateO = alloc(T, n, hid)
	l.tanhCts = alloc(T, n, hid)
	l.z = tensor.New(n, 4*hid)
	l.z2 = tensor.New(n, 4*hid)
	l.dz = tensor.New(n, 4*hid)
	l.dxt = tensor.New(n, l.InDim)
	l.wgx = tensor.New(l.InDim, 4*hid)
	l.wgh = tensor.New(hid, 4*hid)
	l.dh = tensor.New(n, hid)
	l.dc = tensor.New(n, hid)
	l.dx = tensor.New(n, T, l.InDim)
}

// Forward consumes a (N, T, D) sequence and returns the final hidden state
// (N, H).
func (l *LSTM) Forward(x *tensor.Tensor) *tensor.Tensor {
	if x.Rank() != 3 || x.Dim(2) != l.InDim {
		panic(fmt.Sprintf("nn: LSTM input shape %v, want (N, T, %d)", x.Shape(), l.InDim))
	}
	n, T := x.Dim(0), x.Dim(1)
	l.ensureScratch(n, T)
	hid := l.Hidden
	l.hs[0].Zero() // h_{-1} = 0
	l.cs[0].Zero() // c_{-1} = 0

	xd := x.Data()
	for t := 0; t < T; t++ {
		// Slice step t out of the (N, T, D) input into a contiguous (N, D).
		xt := l.xs[t]
		for i := 0; i < n; i++ {
			copy(xt.Data()[i*l.InDim:(i+1)*l.InDim], xd[(i*T+t)*l.InDim:(i*T+t+1)*l.InDim])
		}

		z := l.z
		tensor.MatMulInto(z, xt, l.Wx.Value)
		tensor.MatMulInto(l.z2, l.hs[t], l.Wh.Value)
		z.AddInPlace(l.z2)
		zd, bd := z.Data(), l.B.Value.Data()
		for i := 0; i < n; i++ {
			row := zd[i*4*hid : (i+1)*4*hid]
			for j := range row {
				row[j] += bd[j]
			}
		}

		gi, gf, gg, go_ := l.gateI[t], l.gateF[t], l.gateG[t], l.gateO[t]
		cNew, hNew, tc := l.cs[t+1], l.hs[t+1], l.tanhCts[t]
		giD, gfD, ggD, goD := gi.Data(), gf.Data(), gg.Data(), go_.Data()
		cD, hD, tcD := cNew.Data(), hNew.Data(), tc.Data()
		cPrev := l.cs[t].Data()
		for i := 0; i < n; i++ {
			zrow := zd[i*4*hid : (i+1)*4*hid]
			for j := 0; j < hid; j++ {
				iv := sigmoid(zrow[j])
				fv := sigmoid(zrow[hid+j])
				gv := math.Tanh(zrow[2*hid+j])
				ov := sigmoid(zrow[3*hid+j])
				k := i*hid + j
				cv := fv*cPrev[k] + iv*gv
				tcv := math.Tanh(cv)
				giD[k], gfD[k], ggD[k], goD[k] = iv, fv, gv, ov
				cD[k], tcD[k] = cv, tcv
				hD[k] = ov * tcv
			}
		}
	}
	return l.hs[T]
}

// Backward runs truncated BPTT from the gradient of the final hidden state
// (N, H) and returns the gradient with respect to the input sequence
// (N, T, D).
func (l *LSTM) Backward(grad *tensor.Tensor) *tensor.Tensor {
	if l.xs == nil {
		panic("nn: LSTM.Backward before Forward")
	}
	n, T, hid := l.batch, l.seqLen, l.Hidden
	if grad.Rank() != 2 || grad.Dim(0) != n || grad.Dim(1) != hid {
		panic(fmt.Sprintf("nn: LSTM gradient shape %v, want (%d, %d)", grad.Shape(), n, hid))
	}
	dx := l.dx
	dh := l.dh
	dh.CopyFrom(grad)
	dc := l.dc
	dc.Zero()

	for t := T - 1; t >= 0; t-- {
		gi, gf, gg, go_ := l.gateI[t], l.gateF[t], l.gateG[t], l.gateO[t]
		tc := l.tanhCts[t]
		cPrev := l.cs[t]
		dz := l.dz

		dhD, dcD := dh.Data(), dc.Data()
		giD, gfD, ggD, goD := gi.Data(), gf.Data(), gg.Data(), go_.Data()
		tcD, cpD, dzD := tc.Data(), cPrev.Data(), dz.Data()
		for i := 0; i < n; i++ {
			for j := 0; j < hid; j++ {
				k := i*hid + j
				iv, fv, gv, ov := giD[k], gfD[k], ggD[k], goD[k]
				tcv := tcD[k]
				dhv := dhD[k]
				dcv := dcD[k] + dhv*ov*(1-tcv*tcv)
				do := dhv * tcv
				di := dcv * gv
				df := dcv * cpD[k]
				dg := dcv * iv
				zrow := dzD[i*4*hid : (i+1)*4*hid]
				zrow[j] = di * iv * (1 - iv)
				zrow[hid+j] = df * fv * (1 - fv)
				zrow[2*hid+j] = dg * (1 - gv*gv)
				zrow[3*hid+j] = do * ov * (1 - ov)
				dcD[k] = dcv * fv // carried to step t-1
			}
		}

		// Parameter gradients.
		tensor.MatMulTransAInto(l.wgx, l.xs[t], dz)
		l.Wx.Grad.AddInPlace(l.wgx)
		tensor.MatMulTransAInto(l.wgh, l.hs[t], dz)
		l.Wh.Grad.AddInPlace(l.wgh)
		bg := l.B.Grad.Data()
		zd := dz.Data()
		for i := 0; i < n; i++ {
			row := zd[i*4*hid : (i+1)*4*hid]
			for j := range row {
				bg[j] += row[j]
			}
		}

		// Input and recurrent gradients.
		tensor.MatMulTransBInto(l.dxt, dz, l.Wx.Value)
		dxtD := l.dxt.Data()
		for i := 0; i < n; i++ {
			copy(dx.Data()[(i*T+t)*l.InDim:(i*T+t+1)*l.InDim], dxtD[i*l.InDim:(i+1)*l.InDim])
		}
		tensor.MatMulTransBInto(dh, dz, l.Wh.Value)
	}
	return dx
}

// Params returns the packed input, recurrent and bias parameters.
func (l *LSTM) Params() []*Param { return []*Param{l.Wx, l.Wh, l.B} }
