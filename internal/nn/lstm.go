package nn

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/tensor"
)

// LSTM is a single-layer long short-term memory network over input
// sequences of shape (N, T, D), returning the final hidden state (N, H).
// This is the BS-side recurrent model of the paper: at each of the T = L
// time steps it consumes the concatenation of the pooled CNN output pixels
// and the RF received power, and its final state drives the regression
// head that predicts the future received power.
//
// Gate layout in the packed weight matrices is [input, forget, cell, output].
type LSTM struct {
	Wx *Param // (D, 4H)
	Wh *Param // (H, 4H)
	B  *Param // (1, 4H)

	InDim, Hidden int

	// Forward caches for BPTT.
	seqLen  int
	batch   int
	xs      []*tensor.Tensor // per-step input (N, D)
	hs      []*tensor.Tensor // per-step hidden, hs[0] is h_{-1} = 0
	cs      []*tensor.Tensor // per-step cell,   cs[0] is c_{-1} = 0
	gateI   []*tensor.Tensor
	gateF   []*tensor.Tensor
	gateG   []*tensor.Tensor
	gateO   []*tensor.Tensor
	tanhCts []*tensor.Tensor
}

// NewLSTM returns an LSTM with Glorot-uniform weights and the customary
// forget-gate bias of 1 (helps gradient flow early in training).
func NewLSTM(rng *rand.Rand, inDim, hidden int) *LSTM {
	limitX := math.Sqrt(6.0 / float64(inDim+4*hidden))
	limitH := math.Sqrt(6.0 / float64(hidden+4*hidden))
	l := &LSTM{
		Wx:     NewParam("lstm.wx", tensor.RandUniform(rng, -limitX, limitX, inDim, 4*hidden)),
		Wh:     NewParam("lstm.wh", tensor.RandUniform(rng, -limitH, limitH, hidden, 4*hidden)),
		B:      NewParam("lstm.b", tensor.New(1, 4*hidden)),
		InDim:  inDim,
		Hidden: hidden,
	}
	for j := hidden; j < 2*hidden; j++ {
		l.B.Value.Set(1, 0, j) // forget gate slice
	}
	return l
}

// Forward consumes a (N, T, D) sequence and returns the final hidden state
// (N, H).
func (l *LSTM) Forward(x *tensor.Tensor) *tensor.Tensor {
	if x.Rank() != 3 || x.Dim(2) != l.InDim {
		panic(fmt.Sprintf("nn: LSTM input shape %v, want (N, T, %d)", x.Shape(), l.InDim))
	}
	n, T := x.Dim(0), x.Dim(1)
	h, hid := tensor.New(n, l.Hidden), l.Hidden
	c := tensor.New(n, l.Hidden)

	l.batch, l.seqLen = n, T
	l.xs = make([]*tensor.Tensor, T)
	l.hs = make([]*tensor.Tensor, T+1)
	l.cs = make([]*tensor.Tensor, T+1)
	l.gateI = make([]*tensor.Tensor, T)
	l.gateF = make([]*tensor.Tensor, T)
	l.gateG = make([]*tensor.Tensor, T)
	l.gateO = make([]*tensor.Tensor, T)
	l.tanhCts = make([]*tensor.Tensor, T)
	l.hs[0], l.cs[0] = h, c

	xd := x.Data()
	for t := 0; t < T; t++ {
		// Slice step t out of the (N, T, D) input into a contiguous (N, D).
		xt := tensor.New(n, l.InDim)
		for i := 0; i < n; i++ {
			copy(xt.Data()[i*l.InDim:(i+1)*l.InDim], xd[(i*T+t)*l.InDim:(i*T+t+1)*l.InDim])
		}
		l.xs[t] = xt

		z := tensor.MatMul(xt, l.Wx.Value)
		z.AddInPlace(tensor.MatMul(l.hs[t], l.Wh.Value))
		zd, bd := z.Data(), l.B.Value.Data()
		for i := 0; i < n; i++ {
			row := zd[i*4*hid : (i+1)*4*hid]
			for j := range row {
				row[j] += bd[j]
			}
		}

		gi := tensor.New(n, hid)
		gf := tensor.New(n, hid)
		gg := tensor.New(n, hid)
		go_ := tensor.New(n, hid)
		cNew := tensor.New(n, hid)
		hNew := tensor.New(n, hid)
		tc := tensor.New(n, hid)
		cPrev := l.cs[t].Data()
		for i := 0; i < n; i++ {
			zrow := zd[i*4*hid : (i+1)*4*hid]
			for j := 0; j < hid; j++ {
				iv := sigmoid(zrow[j])
				fv := sigmoid(zrow[hid+j])
				gv := math.Tanh(zrow[2*hid+j])
				ov := sigmoid(zrow[3*hid+j])
				cv := fv*cPrev[i*hid+j] + iv*gv
				tcv := math.Tanh(cv)
				gi.Data()[i*hid+j] = iv
				gf.Data()[i*hid+j] = fv
				gg.Data()[i*hid+j] = gv
				go_.Data()[i*hid+j] = ov
				cNew.Data()[i*hid+j] = cv
				tc.Data()[i*hid+j] = tcv
				hNew.Data()[i*hid+j] = ov * tcv
			}
		}
		l.gateI[t], l.gateF[t], l.gateG[t], l.gateO[t] = gi, gf, gg, go_
		l.cs[t+1], l.hs[t+1], l.tanhCts[t] = cNew, hNew, tc
	}
	return l.hs[T]
}

// Backward runs truncated BPTT from the gradient of the final hidden state
// (N, H) and returns the gradient with respect to the input sequence
// (N, T, D).
func (l *LSTM) Backward(grad *tensor.Tensor) *tensor.Tensor {
	if l.xs == nil {
		panic("nn: LSTM.Backward before Forward")
	}
	n, T, hid := l.batch, l.seqLen, l.Hidden
	if grad.Rank() != 2 || grad.Dim(0) != n || grad.Dim(1) != hid {
		panic(fmt.Sprintf("nn: LSTM gradient shape %v, want (%d, %d)", grad.Shape(), n, hid))
	}
	dx := tensor.New(n, T, l.InDim)
	dh := grad.Clone()
	dc := tensor.New(n, hid)

	for t := T - 1; t >= 0; t-- {
		gi, gf, gg, go_ := l.gateI[t], l.gateF[t], l.gateG[t], l.gateO[t]
		tc := l.tanhCts[t]
		cPrev := l.cs[t]
		dz := tensor.New(n, 4*hid)

		dhD, dcD := dh.Data(), dc.Data()
		for i := 0; i < n; i++ {
			for j := 0; j < hid; j++ {
				k := i*hid + j
				iv, fv, gv, ov := gi.Data()[k], gf.Data()[k], gg.Data()[k], go_.Data()[k]
				tcv := tc.Data()[k]
				dhv := dhD[k]
				dcv := dcD[k] + dhv*ov*(1-tcv*tcv)
				do := dhv * tcv
				di := dcv * gv
				df := dcv * cPrev.Data()[k]
				dg := dcv * iv
				zrow := dz.Data()[i*4*hid : (i+1)*4*hid]
				zrow[j] = di * iv * (1 - iv)
				zrow[hid+j] = df * fv * (1 - fv)
				zrow[2*hid+j] = dg * (1 - gv*gv)
				zrow[3*hid+j] = do * ov * (1 - ov)
				dcD[k] = dcv * fv // carried to step t-1
			}
		}

		// Parameter gradients.
		l.Wx.Grad.AddInPlace(tensor.MatMulTransA(l.xs[t], dz))
		l.Wh.Grad.AddInPlace(tensor.MatMulTransA(l.hs[t], dz))
		bg := l.B.Grad.Data()
		zd := dz.Data()
		for i := 0; i < n; i++ {
			row := zd[i*4*hid : (i+1)*4*hid]
			for j := range row {
				bg[j] += row[j]
			}
		}

		// Input and recurrent gradients.
		dxt := tensor.MatMulTransB(dz, l.Wx.Value)
		for i := 0; i < n; i++ {
			copy(dx.Data()[(i*T+t)*l.InDim:(i*T+t+1)*l.InDim], dxt.Data()[i*l.InDim:(i+1)*l.InDim])
		}
		dh = tensor.MatMulTransB(dz, l.Wh.Value)
	}
	return dx
}

// Params returns the packed input, recurrent and bias parameters.
func (l *LSTM) Params() []*Param { return []*Param{l.Wx, l.Wh, l.B} }
