package nn

import (
	"fmt"
	"math"

	"repro/internal/tensor"
)

// MSE computes the paper's loss Σ (P̂ - P)² / |B| over a mini-batch and
// its gradient 2(P̂ - P)/|B| with respect to the prediction.
func MSE(pred, target *tensor.Tensor) (loss float64, grad *tensor.Tensor) {
	grad = tensor.New(pred.Shape()...)
	loss = MSEInto(grad, pred, target)
	return loss, grad
}

// MSEInto computes the MSE loss, writing the prediction gradient into
// grad (same shape as pred) — the allocation-free variant trainers use.
func MSEInto(grad, pred, target *tensor.Tensor) (loss float64) {
	if !pred.SameShape(target) {
		panic(fmt.Sprintf("nn: MSE shape mismatch %v vs %v", pred.Shape(), target.Shape()))
	}
	if !grad.SameShape(pred) {
		panic(fmt.Sprintf("nn: MSEInto grad shape %v vs pred %v", grad.Shape(), pred.Shape()))
	}
	n := float64(pred.Size())
	pd, td, gd := pred.Data(), target.Data(), grad.Data()
	for i := range pd {
		diff := pd[i] - td[i]
		loss += diff * diff
		gd[i] = 2 * diff / n
	}
	return loss / n
}

// RMSE returns √MSE — the paper reports validation loss in RMSE (dB).
func RMSE(pred, target *tensor.Tensor) float64 {
	loss, _ := MSE(pred, target)
	return math.Sqrt(loss)
}
