package core

import (
	"testing"

	"repro/internal/dataset"
)

// TestForwardingSurface exercises the re-exported surface end to end so
// the aliases cannot silently drift from internal/split.
func TestForwardingSurface(t *testing.T) {
	gen := dataset.DefaultGenConfig()
	gen.NumFrames = 300
	gen.Seed = 9
	gen.Scene.ImageH, gen.Scene.ImageW = 8, 8
	d, err := dataset.Generate(gen)
	if err != nil {
		t.Fatal(err)
	}

	cfg := DefaultConfig(ImageRF, 8)
	cfg.SeqLen = 2
	cfg.HorizonFrames = 2
	cfg.BatchSize = 4
	cfg.HiddenSize = 6
	sp, err := dataset.NewSplit(d, cfg.SeqLen, cfg.HorizonFrames, 200)
	if err != nil {
		t.Fatal(err)
	}
	norm := dataset.FitNormalizer(d, sp.Train)
	model, err := NewModel(cfg, d, norm)
	if err != nil {
		t.Fatal(err)
	}
	tr := NewTrainer(model, d, sp, IdealLink{})
	if _, err := tr.Step(); err != nil {
		t.Fatal(err)
	}

	var link CutLink = NewPaperSimLink(1)
	if _, err := link.ForwardDelay(8192); err != nil {
		t.Fatal(err)
	}
	if got := SchemeName(DefaultConfig(RFOnly, 1)); got != "RF-only" {
		t.Fatalf("SchemeName = %q", got)
	}
	if ImageOnly.String() != "Image-only" {
		t.Fatalf("modality alias broken: %s", ImageOnly)
	}
}
