// Package core is the conventional location of the paper's primary
// contribution. The implementation lives in internal/split (together
// with its distributed counterpart in internal/transport); this package
// re-exports the central types and constructors so readers following the
// repository's layout convention — internal/core = the paper's
// contribution — land on the real surface immediately.
package core

import "repro/internal/split"

// Central types of the multimodal split-learning system.
type (
	// Config fully describes one training run (scheme, pooling,
	// schedule, channel payload parameters).
	Config = split.Config
	// Model is the split network: UE CNN half and BS recurrent half.
	Model = split.Model
	// Trainer runs the paper's training procedure over a CutLink.
	Trainer = split.Trainer
	// CutLink models the wireless hop at the split point.
	CutLink = split.CutLink
	// IdealLink delivers cut-layer tensors instantly.
	IdealLink = split.IdealLink
	// SimLink is the paper's slotted fading channel.
	SimLink = split.SimLink
	// Modality selects RF-only, Image-only or Image+RF.
	Modality = split.Modality
)

// Scheme modalities.
const (
	RFOnly    = split.RFOnly
	ImageOnly = split.ImageOnly
	ImageRF   = split.ImageRF
)

// Constructors, forwarded.
var (
	// DefaultConfig returns the paper-faithful configuration for a
	// scheme and square pooling size.
	DefaultConfig = split.DefaultConfig
	// NewModel constructs the split model for a dataset.
	NewModel = split.NewModel
	// NewTrainer wires a model to a dataset split and link.
	NewTrainer = split.NewTrainer
	// NewPaperSimLink builds the paper's uplink/downlink pair.
	NewPaperSimLink = split.NewPaperSimLink
	// SchemeName formats a configuration as the paper's figures do.
	SchemeName = split.SchemeName
)
